"""Graph analyses used by the schedulers.

* strongly connected components (recurrences, Section 2.2);
* per-recurrence minimum initiation interval (``RecMII`` of one SCC),
  computed by binary search on II with a Bellman-Ford positive-cycle test
  over edge weights ``latency(e) - II * distance(e)``;
* ASAP/ALAP start times for a candidate II (longest paths), from which the
  ordering heuristics derive depth, height and mobility.

All functions take a ``latencies`` mapping (node name → operation latency
on the target machine) so this module stays independent of the machine
model.  Dependence-edge latency is the producer's latency for flow
dependences and one cycle for anti/output memory dependences (strict
ordering, the conservative choice for machines without same-cycle
store-to-load forwarding).
"""

from __future__ import annotations

from repro.graph.ddg import DDG, DepKind, Edge

#: latency charged to anti and output memory dependences.
NON_FLOW_LATENCY = 1


def edge_latency(edge: Edge, latencies: dict[str, int]) -> int:
    """Cycles that must separate ``edge.src`` and ``edge.dst`` (before
    subtracting ``II * distance``)."""
    if edge.dep is DepKind.FLOW:
        return latencies[edge.src]
    return NON_FLOW_LATENCY


# ----------------------------------------------------------------------
def strongly_connected_components(ddg: DDG) -> list[set[str]]:
    """Tarjan's algorithm, iterative (graphs can be deep)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[set[str]] = []
    counter = 0

    for root in ddg.nodes:
        if root in index:
            continue
        work: list[tuple[str, list[str], int]] = [
            (root, [e.dst for e in ddg.out_edges(root)], 0)
        ]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succs, pointer = work.pop()
            advanced = False
            while pointer < len(succs):
                succ = succs[pointer]
                pointer += 1
                if succ not in index:
                    work.append((node, succs, pointer))
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, [e.dst for e in ddg.out_edges(succ)], 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def recurrence_components(ddg: DDG) -> list[set[str]]:
    """SCCs that actually contain a cycle (more than one node, or a
    self-loop)."""
    result = []
    for component in strongly_connected_components(ddg):
        if len(component) > 1:
            result.append(component)
            continue
        (node,) = component
        if any(e.dst == node for e in ddg.out_edges(node)):
            result.append(component)
    return result


# ----------------------------------------------------------------------
def _has_positive_cycle(
    nodes: set[str],
    edges: list[Edge],
    latencies: dict[str, int],
    ii: int,
) -> bool:
    """Bellman-Ford longest-path relaxation restricted to *nodes*; a value
    still improving after |nodes| rounds certifies a positive cycle, i.e.
    II is below this recurrence's RecMII."""
    dist = {name: 0 for name in nodes}
    local = [e for e in edges if e.src in nodes and e.dst in nodes]
    for _ in range(len(nodes)):
        changed = False
        for edge in local:
            weight = edge_latency(edge, latencies) - ii * edge.distance
            candidate = dist[edge.src] + weight
            if candidate > dist[edge.dst]:
                dist[edge.dst] = candidate
                changed = True
        if not changed:
            return False
    return True


def recurrence_mii_of_scc(
    ddg: DDG, component: set[str], latencies: dict[str, int]
) -> int:
    """RecMII contributed by one recurrence: the smallest II at which no
    dependence cycle through the component has positive slack demand
    (equivalently ``max over cycles ceil(sum latency / sum distance)``)."""
    edges = [e for e in ddg.edges if e.src in component and e.dst in component]
    if not edges:
        return 1
    # At II = total latency + 1 every cycle with distance >= 1 has negative
    # weight; if a positive cycle survives there, some cycle has zero total
    # distance and no II can schedule the loop.
    ceiling = sum(edge_latency(e, latencies) for e in edges) + 1
    if _has_positive_cycle(component, edges, latencies, ceiling):
        raise ValueError(
            f"zero-distance dependence cycle in {sorted(component)}; the"
            " graph is unschedulable"
        )
    low, high = 1, ceiling
    while low < high:
        mid = (low + high) // 2
        if _has_positive_cycle(component, edges, latencies, mid):
            low = mid + 1
        else:
            high = mid
    return low


def critical_recurrence(
    ddg: DDG, latencies: dict[str, int]
) -> tuple[set[str] | None, int]:
    """The recurrence with the largest RecMII, and that RecMII (1 if the
    graph is acyclic)."""
    best: set[str] | None = None
    best_mii = 1
    for component in recurrence_components(ddg):
        mii = recurrence_mii_of_scc(ddg, component, latencies)
        if mii > best_mii or best is None:
            best, best_mii = component, max(best_mii, mii)
    return best, best_mii


# ----------------------------------------------------------------------
def longest_path_lengths(
    ddg: DDG,
    latencies: dict[str, int],
    ii: int,
    reverse: bool = False,
) -> dict[str, int]:
    """Longest path (edge weights ``latency - II*distance``, floored at 0
    from the virtual source) from the graph's sources to each node — or to
    each node from the sinks when ``reverse``.

    Callers must pass ``ii >= RecMII`` or the relaxation may not converge;
    a ``ValueError`` is raised if it does not.
    """
    dist = {name: 0 for name in ddg.nodes}
    edges = ddg.edges
    for _ in range(len(ddg.nodes) + 1):
        changed = False
        for edge in edges:
            weight = edge_latency(edge, latencies) - ii * edge.distance
            if reverse:
                src, dst = edge.dst, edge.src
            else:
                src, dst = edge.src, edge.dst
            candidate = dist[src] + weight
            if candidate > dist[dst]:
                dist[dst] = candidate
                changed = True
        if not changed:
            return dist
    raise ValueError(f"II={ii} is below RecMII; longest paths diverge")


def asap_alap(
    ddg: DDG, latencies: dict[str, int], ii: int
) -> tuple[dict[str, int], dict[str, int]]:
    """ASAP and ALAP start cycles at initiation interval *ii*.

    ALAP is normalized so the critical path has zero mobility:
    ``alap[v] = span - height[v]`` where span is the critical-path length.
    """
    depth = longest_path_lengths(ddg, latencies, ii)
    height = longest_path_lengths(ddg, latencies, ii, reverse=True)
    span = max((depth[v] + height[v] for v in ddg.nodes), default=0)
    alap = {v: span - height[v] for v in ddg.nodes}
    return depth, alap
