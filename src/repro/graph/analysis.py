"""Graph analyses used by the schedulers.

* strongly connected components (recurrences, Section 2.2);
* per-recurrence minimum initiation interval (``RecMII`` of one SCC),
  computed by binary search on II with a Bellman-Ford positive-cycle test
  over edge weights ``latency(e) - II * distance(e)``;
* ASAP/ALAP start times for a candidate II (longest paths), from which the
  ordering heuristics derive depth, height and mobility.

All functions take a ``latencies`` mapping (node name → operation latency
on the target machine) so this module stays independent of the machine
model.  Dependence-edge latency is the producer's latency for flow
dependences and one cycle for anti/output memory dependences (strict
ordering, the conservative choice for machines without same-cycle
store-to-load forwarding).

Since the compiled-analysis-core rework, the hot paths run on the
integer-indexed :class:`repro.graph.index.DDGIndex` view: longest paths
relax per-SCC in condensation topological order (O(E) per candidate II
instead of whole-graph O(V·E) Bellman-Ford), and per-SCC RecMII comes
from the index's one-shared-pass memo.  The legacy whole-graph
relaxation survives as :func:`longest_path_lengths_reference` — the
oracle the property tests compare the indexed path against.
"""

from __future__ import annotations

from repro.graph.ddg import DDG, DepKind, Edge
from repro.graph.index import WORK, get_index

#: latency charged to anti and output memory dependences.
NON_FLOW_LATENCY = 1


def edge_latency(edge: Edge, latencies: dict[str, int]) -> int:
    """Cycles that must separate ``edge.src`` and ``edge.dst`` (before
    subtracting ``II * distance``)."""
    if edge.dep is DepKind.FLOW:
        return latencies[edge.src]
    return NON_FLOW_LATENCY


# ----------------------------------------------------------------------
def strongly_connected_components(ddg: DDG) -> list[set[str]]:
    """Tarjan's algorithm (iterative, over the compiled index)."""
    index = get_index(ddg)
    return [index.scc_names(sid) for sid in range(len(index.sccs))]


def recurrence_components(ddg: DDG) -> list[set[str]]:
    """SCCs that actually contain a cycle (more than one node, or a
    self-loop).  Self-loops are precomputed flags on the index — no
    per-singleton edge scan."""
    index = get_index(ddg)
    return [index.scc_names(sid) for sid in index.cyclic_sccs]


# ----------------------------------------------------------------------
def _has_positive_cycle(
    nodes: set[str],
    edges: list[Edge],
    latencies: dict[str, int],
    ii: int,
) -> bool:
    """Bellman-Ford longest-path relaxation restricted to *nodes*; a value
    still improving after |nodes| rounds certifies a positive cycle, i.e.
    II is below this recurrence's RecMII.  (Reference path, also used for
    ad-hoc node subsets that are not SCCs of the graph.)"""
    dist = {name: 0 for name in nodes}
    local = [e for e in edges if e.src in nodes and e.dst in nodes]
    for _ in range(len(nodes)):
        changed = False
        for edge in local:
            WORK.relax_visits += 1
            weight = edge_latency(edge, latencies) - ii * edge.distance
            candidate = dist[edge.src] + weight
            if candidate > dist[edge.dst]:
                dist[edge.dst] = candidate
                changed = True
        if not changed:
            return False
    return True


def _recurrence_mii_generic(
    ddg: DDG, component: set[str], latencies: dict[str, int]
) -> int:
    """Legacy per-component binary search for arbitrary node subsets."""
    edges = [e for e in ddg.edges if e.src in component and e.dst in component]
    if not edges:
        return 1
    # At II = total latency + 1 every cycle with distance >= 1 has negative
    # weight; if a positive cycle survives there, some cycle has zero total
    # distance and no II can schedule the loop.
    ceiling = sum(edge_latency(e, latencies) for e in edges) + 1
    if _has_positive_cycle(component, edges, latencies, ceiling):
        raise ValueError(
            f"zero-distance dependence cycle in {sorted(component)}; the"
            " graph is unschedulable"
        )
    low, high = 1, ceiling
    while low < high:
        mid = (low + high) // 2
        if _has_positive_cycle(component, edges, latencies, mid):
            low = mid + 1
        else:
            high = mid
    return low


def recurrence_mii_of_scc(
    ddg: DDG, component: set[str], latencies: dict[str, int]
) -> int:
    """RecMII contributed by one recurrence: the smallest II at which no
    dependence cycle through the component has positive slack demand
    (equivalently ``max over cycles ceil(sum latency / sum distance)``).

    When *component* is an SCC of *ddg* (the normal case) the answer
    comes from the index's shared per-SCC memo; arbitrary subsets fall
    back to the legacy filtered binary search.
    """
    index = get_index(ddg)
    sid = index.scc_of_component(component)
    if sid is not None:
        return index.latency_view(latencies).recmii_of(sid)
    return _recurrence_mii_generic(ddg, component, latencies)


def critical_recurrence(
    ddg: DDG, latencies: dict[str, int]
) -> tuple[set[str] | None, int]:
    """The recurrence with the largest RecMII, and that RecMII (1 if the
    graph is acyclic)."""
    index = get_index(ddg)
    view = index.latency_view(latencies)
    best: int | None = None
    best_mii = 1
    for sid, mii in view.cyclic_recmii():
        if mii > best_mii or best is None:
            best, best_mii = sid, max(best_mii, mii)
    if best is None:
        return None, best_mii
    return index.scc_names(best), best_mii


# ----------------------------------------------------------------------
def longest_path_lengths(
    ddg: DDG,
    latencies: dict[str, int],
    ii: int,
    reverse: bool = False,
) -> dict[str, int]:
    """Longest path (edge weights ``latency - II*distance``, floored at 0
    from the virtual source) from the graph's sources to each node — or to
    each node from the sinks when ``reverse``.

    Callers must pass ``ii >= RecMII`` or the relaxation may not converge;
    a ``ValueError`` is raised if it does not.

    Runs as per-SCC relaxation in condensation topological order on the
    compiled index (O(E) per call for acyclic graphs);
    :func:`longest_path_lengths_reference` is the legacy whole-graph
    equivalent.
    """
    index = get_index(ddg)
    return index.latency_view(latencies).longest_paths(ii, reverse=reverse)


def longest_path_lengths_reference(
    ddg: DDG,
    latencies: dict[str, int],
    ii: int,
    reverse: bool = False,
) -> dict[str, int]:
    """The pre-index whole-graph Bellman-Ford relaxation, kept verbatim
    as the oracle for :func:`longest_path_lengths`."""
    dist = {name: 0 for name in ddg.nodes}
    edges = ddg.edges
    for _ in range(len(ddg.nodes) + 1):
        changed = False
        for edge in edges:
            WORK.relax_visits += 1
            weight = edge_latency(edge, latencies) - ii * edge.distance
            if reverse:
                src, dst = edge.dst, edge.src
            else:
                src, dst = edge.src, edge.dst
            candidate = dist[src] + weight
            if candidate > dist[dst]:
                dist[dst] = candidate
                changed = True
        if not changed:
            return dist
    raise ValueError(f"II={ii} is below RecMII; longest paths diverge")


def asap_alap(
    ddg: DDG, latencies: dict[str, int], ii: int
) -> tuple[dict[str, int], dict[str, int]]:
    """ASAP and ALAP start cycles at initiation interval *ii*.

    ALAP is normalized so the critical path has zero mobility:
    ``alap[v] = span - height[v]`` where span is the critical-path length.
    """
    view = get_index(ddg).latency_view(latencies)
    depth = view.longest_paths(ii)
    height = view.longest_paths(ii, reverse=True)
    span = max((depth[v] + height[v] for v in ddg.nodes), default=0)
    alap = {v: span - height[v] for v in ddg.nodes}
    return depth, alap
