"""Deterministic fault injection (``REPRO_FAULTS``) and the chaos harness.

See :mod:`repro.faults.plan` for the spec grammar and seam registry, and
:mod:`repro.faults.chaos` for the ``repro chaos`` self-healing harness.
"""

from repro.faults.plan import (
    ENV_VAR,
    SEAMS,
    FaultPlan,
    FaultRule,
    FaultSpecError,
    active_plan,
    enabled,
    fire,
    generation,
    in_worker,
    install,
    maybe_errno,
    maybe_hang,
    maybe_kill,
    reload_from_env,
    set_worker_context,
)

__all__ = [
    "ENV_VAR",
    "SEAMS",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "active_plan",
    "enabled",
    "fire",
    "generation",
    "in_worker",
    "install",
    "maybe_errno",
    "maybe_hang",
    "maybe_kill",
    "reload_from_env",
    "set_worker_context",
]
