"""The ``repro chaos`` harness: a seeded fault schedule against a live
local cluster, asserting that degradation stays invisible in the data.

The experiment the harness runs is the repo's core robustness claim:
under injected worker crashes, disk failures, a shard death and a shard
rebirth, a routed sweep must still produce **byte-identical** artifact
JSON — every fault is allowed to show up in stats and metrics, never in
results.  The phases:

A. *Baseline* — one fault-free in-process sweep; its JSON text is the
   reference byte string every later phase is compared against.
B. *Faulted cluster* — two ``repro serve`` shard daemons are spawned
   with ``REPRO_FAULTS`` schedules (shard 0: every persistent-store
   write fails with ENOSPC, degrading it to memory-only mode; shard 1:
   a pool worker is SIGKILLed before its second cell, exercising the
   respawn-and-retry path).  The routed sweep must match the baseline,
   with the degradation visible in the shards' ``/stats``.
C. *Shard death* — shard 0 is SIGKILLed mid-ring and the sweep re-run;
   every request routed at the corpse must fail over (``failovers >=
   1``) and the bytes must still match.
D. *Shard rebirth* — shard 0 is restarted fault-free on its old port;
   after ``down_ttl`` expires the next sweep re-probes it, the client
   counts a recovery, and the bytes still match.

Finally each surviving daemon is sent SIGTERM and must drain and exit
with status 0 (the graceful-shutdown contract of ``repro serve``).

Everything is deterministic: the suite is seeded, the fault plans are
seeded, the ring layout is a pure function of the shard addresses, so
a CI job can assert exact counters, not just "something happened".
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field

from repro.faults import plan as faults

__all__ = ["ChaosError", "ChaosReport", "run_chaos"]

_SCHEMA = "repro.chaos/1"

#: Environment keys that must not leak from the operator's shell into
#: the shard daemons (each shard gets explicit values instead).
_SCRUBBED_ENV = ("REPRO_FAULTS", "REPRO_TOKEN", "REPRO_CACHE_DIR",
                 "REPRO_SERVER")


class ChaosError(RuntimeError):
    """A chaos-run assertion failed (bytes diverged, a counter that the
    schedule guarantees stayed at zero, a shard that would not start)."""


@dataclass
class ChaosReport:
    """Machine-readable outcome of one chaos run (``repro chaos
    --json-out``): per-phase byte-identity plus the resilience counters
    the fault schedule guarantees."""

    seed: int
    size: int
    shards: list[str]
    phases: dict[str, dict] = field(default_factory=dict)
    worker_restarts: int = 0
    tasks_retried: int = 0
    failovers: int = 0
    recoveries: int = 0
    store_degraded_shards: list[str] = field(default_factory=list)
    graceful_exits: int = 0
    ok: bool = False

    def to_json(self) -> dict:
        return {
            "schema": _SCHEMA,
            "seed": self.seed,
            "size": self.size,
            "shards": list(self.shards),
            "phases": {name: dict(data)
                       for name, data in self.phases.items()},
            "worker_restarts": self.worker_restarts,
            "tasks_retried": self.tasks_retried,
            "failovers": self.failovers,
            "recoveries": self.recoveries,
            "store_degraded_shards": list(self.store_degraded_shards),
            "graceful_exits": self.graceful_exits,
            "ok": self.ok,
        }

    def to_json_text(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)

    def render(self) -> str:
        lines = [f"chaos run: seed={self.seed} size={self.size} "
                 f"shards={','.join(self.shards)}"]
        for name, data in self.phases.items():
            mark = "ok" if data.get("byte_identical") else "DIVERGED"
            lines.append(f"  phase {name:<18} {mark}")
        lines.append(
            f"  worker_restarts={self.worker_restarts}"
            f" tasks_retried={self.tasks_retried}"
            f" failovers={self.failovers}"
            f" recoveries={self.recoveries}"
        )
        lines.append(
            "  store degraded on: "
            + (",".join(self.store_degraded_shards) or "<none>")
        )
        lines.append(f"  graceful exits: {self.graceful_exits}")
        lines.append("  verdict: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _shard_env(token: str, fault_spec: str | None) -> dict:
    env = dict(os.environ)
    for key in _SCRUBBED_ENV:
        env.pop(key, None)
    src_root = pathlib.Path(__file__).resolve().parents[2]
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{src_root}{os.pathsep}{existing}" if existing else str(src_root)
    )
    env["REPRO_TOKEN"] = token
    if fault_spec:
        env["REPRO_FAULTS"] = fault_spec
    return env


def _spawn_shard(
    port: int,
    jobs: int,
    token: str,
    cache_dir: pathlib.Path,
    fault_spec: str | None,
) -> subprocess.Popen:
    command = [
        sys.executable, "-m", "repro", "serve",
        "--tcp", f"127.0.0.1:{port}",
        "--jobs", str(jobs),
        "--cache-dir", str(cache_dir),
    ]
    return subprocess.Popen(
        command,
        env=_shard_env(token, fault_spec),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_ready(
    address: str,
    token: str,
    process: subprocess.Popen,
    timeout: float = 30.0,
) -> None:
    from repro.client import connect

    limit = time.monotonic() + timeout
    while time.monotonic() < limit:
        if process.poll() is not None:
            raise ChaosError(
                f"shard {address} exited with status"
                f" {process.returncode} before becoming ready"
            )
        try:
            client = connect(address, token=token, fallback=False,
                             retries=0, timeout=5.0)
        except Exception:
            time.sleep(0.1)
            continue
        try:
            client.healthz()
            return
        except Exception:
            time.sleep(0.1)
        finally:
            client.close()
    raise ChaosError(f"shard {address} not ready within {timeout:.0f}s")


def _stop_shard(process: subprocess.Popen, timeout: float = 20.0) -> bool:
    """SIGTERM one shard daemon; ``True`` iff it drained and exited 0
    (the graceful-shutdown contract).  A stubborn process is SIGKILLed
    so the harness never leaks daemons."""
    if process.poll() is not None:
        return False
    process.send_signal(signal.SIGTERM)
    try:
        return process.wait(timeout=timeout) == 0
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait()
        return False


def run_chaos(
    size: int = 6,
    seed: int | None = None,
    jobs: int = 2,
    budgets: tuple[int, ...] = (32,),
    artifacts: tuple[str, ...] = ("table1", "fig8"),
    machine_names: tuple[str, ...] = ("P2L4",),
    down_ttl: float = 2.0,
    verify: bool = True,
    artifacts_dir: "str | pathlib.Path | None" = None,
    skip_restart: bool = False,
    log=None,
) -> ChaosReport:
    """Run the full chaos schedule; returns a :class:`ChaosReport`
    (``report.ok`` only when every phase byte-matched the baseline and
    every guaranteed counter moved).  Artifact JSON for each phase is
    written into *artifacts_dir* (``baseline.json``, ``faulted.json``,
    ``failover.json``, ``recovered.json``) so CI can ``cmp`` them."""
    from repro.cluster import ClusterClient
    from repro.eval.engine import run_sweep
    from repro.machine.specs import resolve_machine
    from repro.workloads import perfect_club_like_suite
    from repro.workloads.suite import DEFAULT_SEED

    if seed is None:
        seed = DEFAULT_SEED
    emit = log or (lambda message: None)

    # the harness itself must run fault-free regardless of the
    # operator's environment; the shards get their own explicit specs
    faults.install(None)

    suite = perfect_club_like_suite(size=size, seed=seed)
    suite_info = {"kind": "club", "seed": seed}
    machines = [resolve_machine(name) for name in machine_names]

    scratch = tempfile.TemporaryDirectory(prefix="repro-chaos-")
    scratch_dir = pathlib.Path(scratch.name)
    out_dir = (
        pathlib.Path(artifacts_dir) if artifacts_dir is not None
        else scratch_dir / "artifacts"
    )
    out_dir.mkdir(parents=True, exist_ok=True)

    def sweep_bytes(cluster=None) -> bytes:
        report = run_sweep(
            suite=suite,
            machines=machines,
            budgets=budgets,
            artifacts=artifacts,
            jobs=1,
            suite_info=suite_info,
            cluster=cluster,
            verify=verify,
        )
        return (report.to_json_text() + "\n").encode("utf-8")

    token = f"chaos-{seed}"
    ports = [_free_port(), _free_port()]
    addresses = [f"127.0.0.1:{port}" for port in ports]
    report = ChaosReport(seed=seed, size=size, shards=addresses)
    # the shared kill seam is inert on shard 0 (jobs=1 evaluates in the
    # daemon parent, where pool seams never fire) and guarantees one
    # worker SIGKILL on shard 1 once any worker has taken two cells
    kill_seam = "pool.kill_before_cell:nth=2:gen=0"
    shard_specs = [
        f"seed={seed};store.enospc:every=1;{kill_seam}",
        f"seed={seed};{kill_seam}",
    ]
    shard_jobs = [1, max(2, jobs)]

    def phase(name: str, payload: bytes, baseline: bytes,
              filename: str) -> None:
        (out_dir / filename).write_bytes(payload)
        identical = payload == baseline
        report.phases[name] = {
            "byte_identical": identical,
            "artifact": filename,
            "bytes": len(payload),
        }
        emit(f"phase {name}: {'byte-identical' if identical else 'DIVERGED'}"
             f" ({len(payload)} bytes)")

    processes: list[subprocess.Popen | None] = [None, None]
    try:
        emit(f"phase baseline: fault-free local sweep"
             f" (size={size} seed={seed})")
        baseline = sweep_bytes()
        phase("baseline", baseline, baseline, "baseline.json")

        for index in range(2):
            cache_dir = scratch_dir / f"shard{index}-cache"
            cache_dir.mkdir(exist_ok=True)
            processes[index] = _spawn_shard(
                ports[index], shard_jobs[index], token, cache_dir,
                shard_specs[index],
            )
        for index in range(2):
            _wait_ready(addresses[index], token, processes[index])
        emit(f"shards up: {addresses[0]} (jobs=1, ENOSPC store),"
             f" {addresses[1]} (jobs={shard_jobs[1]}, worker-kill)")

        cluster = ClusterClient(
            addresses, token=token, retries=1, down_ttl=down_ttl
        )
        with cluster:
            phase("faulted", sweep_bytes(cluster), baseline,
                  "faulted.json")

            stats = cluster.stats()
            for address, document in stats["shards"].items():
                if not isinstance(document, dict) or "error" in document:
                    continue
                store = document.get("store") or {}
                workers = document.get("workers") or {}
                worker_store = workers.get("store") or {}
                if store.get("degraded") or worker_store.get(
                    "degraded_processes"
                ):
                    report.store_degraded_shards.append(address)
                pool = document.get("pool") or {}
                report.worker_restarts += pool.get("worker_restarts", 0)
                report.tasks_retried += pool.get("tasks_retried", 0)
            emit(f"shard stats: worker_restarts={report.worker_restarts}"
                 f" degraded={report.store_degraded_shards}")

            emit(f"phase failover: SIGKILL shard {addresses[0]}")
            processes[0].kill()
            processes[0].wait()
            processes[0] = None
            phase("failover", sweep_bytes(cluster), baseline,
                  "failover.json")
            report.failovers = cluster.failovers

            if not skip_restart:
                emit(f"phase recovery: restarting shard {addresses[0]}"
                     f" fault-free, waiting out down_ttl={down_ttl:.1f}s")
                cache_dir = scratch_dir / "shard0-cache-reborn"
                cache_dir.mkdir(exist_ok=True)
                processes[0] = _spawn_shard(
                    ports[0], 1, token, cache_dir, None
                )
                _wait_ready(addresses[0], token, processes[0])
                time.sleep(down_ttl + 0.2)
                phase("recovered", sweep_bytes(cluster), baseline,
                      "recovered.json")
                report.recoveries = cluster.recoveries

        for index in range(2):
            process = processes[index]
            if process is not None and _stop_shard(process):
                report.graceful_exits += 1
            processes[index] = None

        identical = all(
            data["byte_identical"] for data in report.phases.values()
        )
        counters_moved = (
            report.worker_restarts >= 1
            and report.failovers >= 1
            and bool(report.store_degraded_shards)
            and (skip_restart or report.recoveries >= 1)
        )
        report.ok = identical and counters_moved
        return report
    finally:
        for process in processes:
            if process is not None and process.poll() is None:
                process.kill()
                process.wait()
        scratch.cleanup()
