"""Deterministic, seeded fault injection for the repro service stack.

The production code is threaded with *named seams* — call sites such as
``faults.maybe_kill("pool.kill_before_cell")`` — that are inert unless a
:class:`FaultPlan` is installed.  A plan is activated either explicitly
(``faults.install("seed=7;store.enospc:every=1")``) or via the
``REPRO_FAULTS`` environment variable, which makes fault schedules reach
subprocess pool workers and ``repro serve`` daemons without any plumbing.

Spec grammar (entries separated by ``;``, parameters by ``:``)::

    REPRO_FAULTS="seed=42;pool.kill_before_cell:nth=3:gen=0;store.enospc:every=1"

Each entry names a seam plus trigger parameters:

``nth=N``    fire only on the N-th hit of the seam (per process)
``every=N``  fire on every N-th hit
``times=N``  fire at most N times in total
``prob=P``   fire with probability P (seeded, deterministic per seam)
``gen=G``    fire only in pool *generation* G (a respawned pool bumps the
             generation, so ``gen=0`` faults cannot re-kill retried work)
``ms=N``     duration parameter for hang / slow seams (default 100)

A rule with no trigger parameters fires on every hit.  All counters are
per-process; pool workers re-read ``REPRO_FAULTS`` in their initializer so
each worker gets fresh, deterministic counters.

When no plan is installed every seam helper reduces to one dict lookup
guarded by :func:`enabled` — effectively zero-cost.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass, field

ENV_VAR = "REPRO_FAULTS"

#: Every seam the production code is instrumented with.  Parsing a spec
#: that names an unknown seam is an error, so typos fail loudly.
SEAMS = frozenset(
    {
        # pool layer (fire only inside pool worker processes)
        "pool.kill_before_cell",
        "pool.kill_after_cell",
        "pool.hang_cell",
        # store layer
        "store.enospc",
        "store.erofs",
        "store.torn_write",
        "store.corrupt",
        # server / protocol layer
        "server.drop_connection",
        "server.slow_response",
        "server.truncate_response",
        # cluster layer
        "cluster.shard_error",
        "cluster.auth_flap",
        # metrics layer (the recorder degrades instead of failing)
        "metrics.put_io",
        "metrics.db_locked",
    }
)

#: Seams that must only fire inside a pool worker process (never in the
#: daemon / test parent, where a SIGKILL would take down the service).
WORKER_ONLY_PREFIX = "pool."

_PARAMS = frozenset({"nth", "every", "times", "prob", "gen", "ms"})


class FaultSpecError(ValueError):
    """Raised for malformed ``REPRO_FAULTS`` specs."""


@dataclass
class FaultRule:
    """One parsed spec entry: a seam plus its trigger parameters."""

    seam: str
    nth: int | None = None
    every: int | None = None
    times: int | None = None
    prob: float | None = None
    gen: int | None = None
    ms: float = 100.0
    fired: int = 0
    _rng: random.Random = field(default=None, repr=False)  # type: ignore[assignment]

    def should_fire(self, hit: int, generation: int) -> bool:
        if self.gen is not None and self.gen != generation:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        if self.nth is not None and hit != self.nth:
            return False
        if self.every is not None and hit % self.every != 0:
            return False
        if self.prob is not None and self._rng.random() >= self.prob:
            return False
        return True


class FaultPlan:
    """A seeded set of fault rules keyed by seam name."""

    def __init__(self, rules: list[FaultRule], seed: int = 0, spec: str = "") -> None:
        self.seed = seed
        self.spec = spec
        self.rules: dict[str, list[FaultRule]] = {}
        self.hits: dict[str, int] = {}
        for rule in rules:
            # one independent, reproducible stream per rule: seeded by
            # (plan seed, seam, rule position) so reordering unrelated
            # entries never shifts another rule's probability draws
            index = len(self.rules.get(rule.seam, ()))
            rule._rng = random.Random(f"{seed}:{rule.seam}:{index}")
            self.rules.setdefault(rule.seam, []).append(rule)

    @classmethod
    def from_spec(cls, text: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS`` spec string (see module docstring)."""
        seed = 0
        rules: list[FaultRule] = []
        for raw_entry in text.split(";"):
            entry = raw_entry.strip()
            if not entry:
                continue
            if entry.startswith("seed="):
                try:
                    seed = int(entry[5:])
                except ValueError:
                    raise FaultSpecError(f"invalid seed in fault spec: {entry!r}") from None
                continue
            parts = entry.split(":")
            seam = parts[0].strip()
            if seam not in SEAMS:
                known = ", ".join(sorted(SEAMS))
                raise FaultSpecError(f"unknown fault seam {seam!r} (known: {known})")
            rule = FaultRule(seam=seam)
            for part in parts[1:]:
                if "=" not in part:
                    raise FaultSpecError(f"malformed fault parameter {part!r} in {entry!r}")
                name, _, value = part.partition("=")
                name = name.strip()
                if name not in _PARAMS:
                    allowed = ", ".join(sorted(_PARAMS))
                    raise FaultSpecError(
                        f"unknown fault parameter {name!r} in {entry!r} (allowed: {allowed})"
                    )
                try:
                    if name in ("prob", "ms"):
                        setattr(rule, name, float(value))
                    else:
                        setattr(rule, name, int(value))
                except ValueError:
                    raise FaultSpecError(
                        f"invalid value for {name!r} in {entry!r}: {value!r}"
                    ) from None
            if rule.prob is not None and not 0.0 <= rule.prob <= 1.0:
                raise FaultSpecError(f"prob must be within [0, 1] in {entry!r}")
            rules.append(rule)
        return cls(rules, seed=seed, spec=text)

    def fire(self, seam: str, generation: int = 0) -> FaultRule | None:
        """Record a hit on *seam*; return the triggered rule, if any."""
        rules = self.rules.get(seam)
        if not rules:
            return None
        hit = self.hits.get(seam, 0) + 1
        self.hits[seam] = hit
        for rule in rules:
            if rule.should_fire(hit, generation):
                rule.fired += 1
                return rule
        return None

    def describe(self) -> dict:
        return {
            "seed": self.seed,
            "spec": self.spec,
            "seams": sorted(self.rules),
            "hits": dict(sorted(self.hits.items())),
        }


# ---------------------------------------------------------------------------
# Module-level plan state.
#
# ``_PLAN`` holds the active plan: ``_UNSET`` means "not decided yet — read
# REPRO_FAULTS lazily on first use", ``None`` means explicitly disabled.

_UNSET = object()
_PLAN: object = _UNSET
_IN_WORKER = False
_GENERATION = 0


def install(plan: "FaultPlan | str | None") -> FaultPlan | None:
    """Install *plan* (a FaultPlan, a spec string, or None to disable)."""
    global _PLAN
    if isinstance(plan, str):
        plan = FaultPlan.from_spec(plan)
    _PLAN = plan
    return plan


def reload_from_env() -> FaultPlan | None:
    """Re-read ``REPRO_FAULTS`` (used by pool worker initializers)."""
    global _PLAN
    spec = os.environ.get(ENV_VAR, "").strip()
    _PLAN = FaultPlan.from_spec(spec) if spec else None
    return _PLAN


def active_plan() -> FaultPlan | None:
    """The active plan, reading ``REPRO_FAULTS`` on first use."""
    if _PLAN is _UNSET:
        return reload_from_env()
    return _PLAN  # type: ignore[return-value]


def enabled() -> bool:
    """Cheap guard for instrumented call sites."""
    if _PLAN is _UNSET:
        return active_plan() is not None
    return _PLAN is not None


def set_worker_context(generation: int, in_worker: bool = True) -> None:
    """Mark this process as a pool worker of the given fault generation."""
    global _IN_WORKER, _GENERATION
    _IN_WORKER = in_worker
    _GENERATION = generation


def generation() -> int:
    return _GENERATION


def in_worker() -> bool:
    return _IN_WORKER


def fire(seam: str) -> FaultRule | None:
    """Hit *seam*; return the triggered rule or None.

    ``pool.*`` seams are suppressed outside pool worker processes so a kill
    fault can never take down the daemon or test parent by accident.
    """
    plan = active_plan()
    if plan is None:
        return None
    if seam.startswith(WORKER_ONLY_PREFIX) and not _IN_WORKER:
        return None
    return plan.fire(seam, generation=_GENERATION)


def maybe_kill(seam: str) -> None:
    """SIGKILL the current process if *seam* triggers (worker seams only)."""
    if fire(seam) is not None:
        os.kill(os.getpid(), signal.SIGKILL)


def maybe_hang(seam: str) -> None:
    """Sleep for the rule's ``ms`` if *seam* triggers."""
    rule = fire(seam)
    if rule is not None:
        time.sleep(rule.ms / 1000.0)


def maybe_errno(seam: str, code: int) -> None:
    """Raise ``OSError(code)`` if *seam* triggers."""
    if fire(seam) is not None:
        raise OSError(code, os.strerror(code), "<fault-injected>")
