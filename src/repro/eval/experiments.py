"""Per-table / per-figure experiment drivers (paper Section 5).

Each ``run_*`` function regenerates one artifact of the paper's evaluation
on the reproduction suite and returns a result object whose ``render()``
prints the same rows/series the paper reports.  DESIGN.md carries the
experiment index mapping these drivers to the paper's tables and figures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.combined import schedule_best_of_both
from repro.core.driver import SpillResult, schedule_with_spilling
from repro.core.increase_ii import schedule_increasing_ii
from repro.core.select import SelectionPolicy
from repro.eval.metrics import LoopOutcome, executed_cycles, memory_traffic
from repro.eval.reporting import format_table
from repro.lifetimes.requirements import register_requirements
from repro.machine.machine import MachineConfig, paper_configurations
from repro.sched.base import ModuloScheduler
from repro.sched.hrms import HRMSScheduler
from repro.sched.schedule import Schedule
from repro.workloads.apsi import apsi47_like, apsi50_like
from repro.workloads.suite import Workload, perfect_club_like_suite

#: Figure 8's heuristic variants, in the paper's order.
FIG8_VARIANTS: list[tuple[str, dict]] = [
    ("Max(LT)", dict(policy=SelectionPolicy.MAX_LT, multiple=False, last_ii=False)),
    ("Max(LT/Traf)", dict(policy=SelectionPolicy.MAX_LT_TRAF, multiple=False, last_ii=False)),
    ("Max(LT/Traf)+mult", dict(policy=SelectionPolicy.MAX_LT_TRAF, multiple=True, last_ii=False)),
    ("Max(LT/Traf)+mult+lastII", dict(policy=SelectionPolicy.MAX_LT_TRAF, multiple=True, last_ii=True)),
]

DEFAULT_BUDGETS = (64, 32)


def _ideal_outcomes(
    suite: list[Workload], machine: MachineConfig, scheduler: ModuloScheduler
) -> dict[str, tuple[Schedule, int]]:
    """Plain (infinite-register) schedule and register demand per loop."""
    outcomes = {}
    for workload in suite:
        schedule = scheduler.schedule(workload.ddg, machine)
        report = register_requirements(schedule)
        outcomes[workload.name] = (schedule, report.total)
    return outcomes


# ======================================================================
# Table 1 — loops that never converge under II increase
@dataclass
class Table1Result:
    """Per (configuration, register budget): how many loops never converge
    and the share of (infinite-register) execution cycles they represent."""

    suite_size: int
    rows: list[tuple[str, int, int, float]] = field(default_factory=list)
    # (config, budget, never_converge_count, weighted cycle share %)

    def render(self) -> str:
        return format_table(
            ["config", "registers", "loops that never converge", "% of cycles"],
            [list(row) for row in self.rows],
            title=(
                "Table 1: II-increase non-convergence"
                f" (suite of {self.suite_size} loops)"
            ),
        )


def run_table1(
    suite: list[Workload] | None = None,
    machines: list[MachineConfig] | None = None,
    budgets: tuple[int, ...] = DEFAULT_BUDGETS,
    scheduler: ModuloScheduler | None = None,
    patience: int = 10,
) -> Table1Result:
    suite = suite if suite is not None else perfect_club_like_suite()
    machines = machines if machines is not None else paper_configurations()
    scheduler = scheduler or HRMSScheduler()
    result = Table1Result(suite_size=len(suite))
    for machine in machines:
        ideal = _ideal_outcomes(suite, machine, scheduler)
        total_cycles = sum(
            executed_cycles(ideal[w.name][0], w.weight) for w in suite
        )
        for budget in budgets:
            failed_cycles = 0
            failed_count = 0
            for workload in suite:
                schedule, registers = ideal[workload.name]
                if registers <= budget:
                    continue
                outcome = schedule_increasing_ii(
                    workload.ddg,
                    machine,
                    budget,
                    scheduler=scheduler,
                    patience=patience,
                )
                if not outcome.converged:
                    failed_count += 1
                    failed_cycles += executed_cycles(schedule, workload.weight)
            share = 100.0 * failed_cycles / total_cycles if total_cycles else 0.0
            result.rows.append((machine.name, budget, failed_count, share))
    return result


# ======================================================================
# Figure 4 — register requirement vs II for the two example loops
@dataclass
class Fig4Result:
    trails: dict[str, list[tuple[int, int]]] = field(default_factory=dict)
    converged: dict[str, dict[int, int | None]] = field(default_factory=dict)
    # loop -> {budget: II reached or None}

    def render(self) -> str:
        blocks = []
        for name, trail in self.trails.items():
            rows = [[ii, regs] for ii, regs in trail]
            blocks.append(
                format_table(
                    ["II", "registers"],
                    rows,
                    title=f"Figure 4 ({name}): registers vs II",
                )
            )
            notes = ", ".join(
                f"{budget} regs -> "
                + (f"II={ii}" if ii is not None else "never converges")
                for budget, ii in self.converged[name].items()
            )
            blocks.append(f"convergence: {notes}")
        return "\n\n".join(blocks)


def run_fig4(
    machine: MachineConfig | None = None,
    budgets: tuple[int, ...] = (32, 16),
    scheduler: ModuloScheduler | None = None,
    max_ii: int = 120,
) -> Fig4Result:
    machine = machine or paper_configurations()[1]  # P2L4
    scheduler = scheduler or HRMSScheduler()
    result = Fig4Result()
    for ddg in (apsi47_like(), apsi50_like()):
        # One long sweep (down to an impossible budget) yields the whole
        # registers-vs-II curve.
        sweep = schedule_increasing_ii(
            ddg,
            machine,
            available=1,
            scheduler=scheduler,
            patience=18,
            max_ii=max_ii,
            stop_on_certificate=False,
        )
        result.trails[ddg.name] = sweep.trail
        result.converged[ddg.name] = {}
        for budget in budgets:
            fitting = [ii for ii, regs in sweep.trail if regs <= budget]
            result.converged[ddg.name][budget] = min(fitting) if fitting else None
    return result


# ======================================================================
# Figure 7 — behaviour while spilling lifetimes one at a time
@dataclass
class Fig7Result:
    machine: str = ""
    rounds: dict[str, list[tuple[int, int, int, int, float]]] = field(
        default_factory=dict
    )
    # loop -> [(n_spilled, II, MII, registers, bus %)]

    def render(self) -> str:
        blocks = []
        for name, rows in self.rounds.items():
            blocks.append(
                format_table(
                    ["spilled", "II", "MII", "registers", "bus %"],
                    [list(row) for row in rows],
                    title=(
                        f"Figure 7 ({name}, {self.machine}):"
                        " spilling trajectory, Max(LT)"
                    ),
                )
            )
        return "\n\n".join(blocks)


def run_fig7(
    machine: MachineConfig | None = None,
    target_registers: int = 12,
    scheduler: ModuloScheduler | None = None,
) -> Fig7Result:
    machine = machine or paper_configurations()[1]  # P2L4
    scheduler = scheduler or HRMSScheduler()
    result = Fig7Result(machine=machine.name)
    buses = machine.memory_units()
    for ddg in (apsi47_like(), apsi50_like()):
        run = schedule_with_spilling(
            ddg,
            machine,
            target_registers,
            scheduler=scheduler,
            policy=SelectionPolicy.MAX_LT,
            multiple=False,
            last_ii=False,
        )
        rows = []
        spilled_so_far = 0
        for entry in run.rounds:
            bus = 100.0 * entry.memory_ops / (buses * entry.ii)
            rows.append(
                (spilled_so_far, entry.ii, entry.mii, entry.registers, bus)
            )
            spilled_so_far += len(entry.spilled_values)
        result.rounds[ddg.name] = rows
    return result


# ======================================================================
# Figure 8 — heuristics across configurations: cycles, traffic, time
@dataclass
class Fig8Result:
    suite_size: int
    rows: list[dict] = field(default_factory=list)

    def render(self) -> str:
        headers = [
            "config", "registers", "variant", "cycles", "traffic",
            "attempts", "placements", "seconds", "not converged",
        ]
        table_rows = [
            [
                row["config"], row["budget"], row["variant"], row["cycles"],
                row["traffic"], row["attempts"], row["placements"],
                row["seconds"], row["failed"],
            ]
            for row in self.rows
        ]
        return format_table(
            headers,
            table_rows,
            title=(
                "Figure 8: spilling heuristics — execution cycles (8a),"
                f" memory traffic (8b), scheduling effort (8c);"
                f" suite of {self.suite_size} loops"
            ),
        )


def run_fig8(
    suite: list[Workload] | None = None,
    machines: list[MachineConfig] | None = None,
    budgets: tuple[int, ...] = DEFAULT_BUDGETS,
    variants: list[tuple[str, dict]] | None = None,
    scheduler: ModuloScheduler | None = None,
) -> Fig8Result:
    suite = suite if suite is not None else perfect_club_like_suite()
    machines = machines if machines is not None else paper_configurations()
    variants = variants if variants is not None else FIG8_VARIANTS
    scheduler = scheduler or HRMSScheduler()
    result = Fig8Result(suite_size=len(suite))
    for machine in machines:
        ideal = _ideal_outcomes(suite, machine, scheduler)
        for budget in budgets:
            ideal_cycles = sum(
                executed_cycles(ideal[w.name][0], w.weight) for w in suite
            )
            ideal_traffic = sum(
                memory_traffic(w.ddg, w.weight) for w in suite
            )
            result.rows.append(
                dict(
                    config=machine.name,
                    budget=budget,
                    variant="ideal (infinite regs)",
                    cycles=ideal_cycles,
                    traffic=ideal_traffic,
                    attempts=0,
                    placements=0,
                    seconds=0.0,
                    failed=0,
                )
            )
            for label, options in variants:
                row = _run_fig8_variant(
                    suite, machine, budget, scheduler, ideal, options
                )
                row.update(config=machine.name, budget=budget, variant=label)
                result.rows.append(row)
    return result


def _run_fig8_variant(
    suite: list[Workload],
    machine: MachineConfig,
    budget: int,
    scheduler: ModuloScheduler,
    ideal: dict[str, tuple[Schedule, int]],
    options: dict,
) -> dict:
    cycles = traffic = attempts = placements = failed = 0
    started = time.perf_counter()
    for workload in suite:
        schedule, registers = ideal[workload.name]
        if registers <= budget:
            cycles += executed_cycles(schedule, workload.weight)
            traffic += memory_traffic(workload.ddg, workload.weight)
            continue
        run = schedule_with_spilling(
            workload.ddg, machine, budget, scheduler=scheduler, **options
        )
        attempts += run.effort.attempts
        placements += run.effort.placements
        if not run.converged:
            failed += 1
        final = run.schedule if run.schedule is not None else schedule
        final_ddg = run.ddg if run.ddg is not None else workload.ddg
        cycles += executed_cycles(final, workload.weight)
        traffic += memory_traffic(final_ddg, workload.weight)
    return dict(
        cycles=cycles,
        traffic=traffic,
        attempts=attempts,
        placements=placements,
        seconds=time.perf_counter() - started,
        failed=failed,
    )


# ======================================================================
# Figure 9 — increasing the II vs adding spill code vs best of all
@dataclass
class Fig9Result:
    suite_size: int
    rows: list[tuple[str, int, int, int, int, int, int]] = field(
        default_factory=list
    )
    # (config, budget, subset size, cycles incII, cycles spill,
    #  cycles best-of-all, ideal cycles)

    def render(self) -> str:
        return format_table(
            [
                "config", "registers", "loops", "increase II", "spill",
                "best of all", "ideal",
            ],
            [list(row) for row in self.rows],
            title=(
                "Figure 9: II-increase vs spilling vs combined, on the"
                " subset needing register reduction where II-increase"
                f" converges (suite of {self.suite_size} loops)"
            ),
        )


def run_fig9(
    suite: list[Workload] | None = None,
    machines: list[MachineConfig] | None = None,
    budgets: tuple[int, ...] = DEFAULT_BUDGETS,
    scheduler: ModuloScheduler | None = None,
) -> Fig9Result:
    suite = suite if suite is not None else perfect_club_like_suite()
    machines = machines if machines is not None else paper_configurations()
    scheduler = scheduler or HRMSScheduler()
    result = Fig9Result(suite_size=len(suite))
    for machine in machines:
        ideal = _ideal_outcomes(suite, machine, scheduler)
        for budget in budgets:
            subset = 0
            cycles_inc = cycles_spill = cycles_best = cycles_ideal = 0
            for workload in suite:
                schedule, registers = ideal[workload.name]
                if registers <= budget:
                    continue
                inc = schedule_increasing_ii(
                    workload.ddg, machine, budget, scheduler=scheduler
                )
                if not inc.converged:
                    continue  # the paper's comparison excludes these
                spill = schedule_with_spilling(
                    workload.ddg, machine, budget, scheduler=scheduler
                )
                best = schedule_best_of_both(
                    workload.ddg, machine, budget, scheduler=scheduler
                )
                subset += 1
                cycles_ideal += executed_cycles(schedule, workload.weight)
                cycles_inc += executed_cycles(inc.schedule, workload.weight)
                spill_schedule = spill.schedule or inc.schedule
                cycles_spill += executed_cycles(spill_schedule, workload.weight)
                best_schedule = best.schedule or spill_schedule
                cycles_best += executed_cycles(best_schedule, workload.weight)
            result.rows.append(
                (
                    machine.name,
                    budget,
                    subset,
                    cycles_inc,
                    cycles_spill,
                    cycles_best,
                    cycles_ideal,
                )
            )
    return result
