"""Per-table / per-figure experiment drivers (paper Section 5).

Each ``run_*`` function regenerates one artifact of the paper's evaluation
on the reproduction suite and returns a result object whose ``render()``
prints the same rows/series the paper reports.  DESIGN.md carries the
experiment index mapping these drivers to the paper's tables and figures.

Since the engine rewrite, every driver expresses its artifact as a batch
of independent :class:`repro.eval.engine.Cell` objects and aggregates the
evaluated results: pass ``jobs=N`` to fan the cells out over worker
processes.  Results are identical for any job count; each result object
keeps its :class:`~repro.eval.engine.EngineRun` (timings and cache
accounting) in ``engine_run``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.select import SelectionPolicy
from repro.eval.reporting import format_table
from repro.machine.machine import MachineConfig, paper_configurations
from repro.sched.base import ModuloScheduler
from repro.workloads.apsi import apsi47_source, apsi50_source
from repro.workloads.suite import Workload, perfect_club_like_suite

#: Figure 8's heuristic variants, in the paper's order.
FIG8_VARIANTS: list[tuple[str, dict]] = [
    ("Max(LT)", dict(policy=SelectionPolicy.MAX_LT, multiple=False, last_ii=False)),
    ("Max(LT/Traf)", dict(policy=SelectionPolicy.MAX_LT_TRAF, multiple=False, last_ii=False)),
    ("Max(LT/Traf)+mult", dict(policy=SelectionPolicy.MAX_LT_TRAF, multiple=True, last_ii=False)),
    ("Max(LT/Traf)+mult+lastII", dict(policy=SelectionPolicy.MAX_LT_TRAF, multiple=True, last_ii=True)),
]

DEFAULT_BUDGETS = (64, 32)


# ======================================================================
# Table 1 — loops that never converge under II increase
@dataclass
class Table1Result:
    """Per (configuration, register budget): how many loops never converge
    and the share of (infinite-register) execution cycles they represent."""

    suite_size: int
    rows: list[tuple[str, int, int, float]] = field(default_factory=list)
    # (config, budget, never_converge_count, weighted cycle share %)
    engine_run: object | None = field(default=None, repr=False)

    def render(self) -> str:
        return format_table(
            ["config", "registers", "loops that never converge", "% of cycles"],
            [list(row) for row in self.rows],
            title=(
                "Table 1: II-increase non-convergence"
                f" (suite of {self.suite_size} loops)"
            ),
        )


def run_table1(
    suite: list[Workload] | None = None,
    machines: list[MachineConfig] | None = None,
    budgets: tuple[int, ...] = DEFAULT_BUDGETS,
    scheduler: ModuloScheduler | None = None,
    patience: int = 10,
    jobs: int = 1,
) -> Table1Result:
    from repro.eval.engine import machine_spec, run_cells, workload_cells

    suite = suite if suite is not None else perfect_club_like_suite()
    machines = machines if machines is not None else paper_configurations()
    cells = []
    for machine in machines:
        for budget in budgets:
            cells.extend(
                workload_cells(
                    "table1", suite, machine, budget=budget,
                    scheduler=scheduler, options={"patience": patience},
                )
            )
    run = run_cells(cells, jobs=jobs)
    data = {
        (r.cell.machine, r.cell.budget, r.cell.workload): r.data
        for r in run.results
    }
    result = Table1Result(suite_size=len(suite), engine_run=run)
    for machine in machines:
        spec = machine_spec(machine)
        total_cycles = sum(
            data[(spec, budgets[0], w.name)]["ideal_cycles"] for w in suite
        )
        for budget in budgets:
            rows = [data[(spec, budget, w.name)] for w in suite]
            failed_count = sum(row["failed"] for row in rows)
            failed_cycles = sum(
                row["ideal_cycles"] for row in rows if row["failed"]
            )
            share = (
                100.0 * failed_cycles / total_cycles if total_cycles else 0.0
            )
            result.rows.append((machine.name, budget, failed_count, share))
    return result


# ======================================================================
# Figure 4 — register requirement vs II for the two example loops
@dataclass
class Fig4Result:
    trails: dict[str, list[tuple[int, int]]] = field(default_factory=dict)
    converged: dict[str, dict[int, int | None]] = field(default_factory=dict)
    # loop -> {budget: II reached or None}
    machine: str = ""
    engine_run: object | None = field(default=None, repr=False)

    def render(self) -> str:
        blocks = []
        for name, trail in self.trails.items():
            rows = [[ii, regs] for ii, regs in trail]
            blocks.append(
                format_table(
                    ["II", "registers"],
                    rows,
                    title=f"Figure 4 ({name}): registers vs II",
                )
            )
            notes = ", ".join(
                f"{budget} regs -> "
                + (f"II={ii}" if ii is not None else "never converges")
                for budget, ii in self.converged[name].items()
            )
            blocks.append(f"convergence: {notes}")
        return "\n\n".join(blocks)


def run_fig4(
    machine: MachineConfig | None = None,
    budgets: tuple[int, ...] = (32, 16),
    scheduler: ModuloScheduler | None = None,
    max_ii: int = 120,
    jobs: int = 1,
) -> Fig4Result:
    from repro.eval.engine import (
        Cell,
        machine_spec,
        run_cells,
        scheduler_name,
    )

    machine = machine or paper_configurations()[1]  # P2L4
    # One long sweep per loop (down to an impossible budget, so budget=1)
    # yields the whole registers-vs-II curve; the per-budget convergence
    # notes are read off the shared trail.
    cells = [
        Cell(
            kind="fig4",
            workload=name,
            source=source,
            weight=1,
            machine=machine_spec(machine),
            budget=1,
            scheduler=scheduler_name(scheduler),
            options=(("max_ii", max_ii), ("patience", 18)),
        )
        for name, source in (
            ("apsi47_like", apsi47_source()),
            ("apsi50_like", apsi50_source()),
        )
    ]
    run = run_cells(cells, jobs=jobs)
    result = Fig4Result(machine=machine.name, engine_run=run)
    for cell_result in run.results:
        trail = [tuple(point) for point in cell_result.data["trail"]]
        name = cell_result.cell.workload
        result.trails[name] = trail
        result.converged[name] = {}
        for budget in budgets:
            fitting = [ii for ii, regs in trail if regs <= budget]
            result.converged[name][budget] = min(fitting) if fitting else None
    return result


# ======================================================================
# Figure 7 — behaviour while spilling lifetimes one at a time
@dataclass
class Fig7Result:
    machine: str = ""
    rounds: dict[str, list[tuple[int, int, int, int, float]]] = field(
        default_factory=dict
    )
    # loop -> [(n_spilled, II, MII, registers, bus %)]
    engine_run: object | None = field(default=None, repr=False)

    def render(self) -> str:
        blocks = []
        for name, rows in self.rounds.items():
            blocks.append(
                format_table(
                    ["spilled", "II", "MII", "registers", "bus %"],
                    [list(row) for row in rows],
                    title=(
                        f"Figure 7 ({name}, {self.machine}):"
                        " spilling trajectory, Max(LT)"
                    ),
                )
            )
        return "\n\n".join(blocks)


def run_fig7(
    machine: MachineConfig | None = None,
    target_registers: int = 12,
    scheduler: ModuloScheduler | None = None,
    jobs: int = 1,
) -> Fig7Result:
    from repro.eval.engine import (
        Cell,
        machine_spec,
        run_cells,
        scheduler_name,
    )

    machine = machine or paper_configurations()[1]  # P2L4
    cells = [
        Cell(
            kind="fig7",
            workload=name,
            source=source,
            weight=1,
            machine=machine_spec(machine),
            budget=target_registers,
            scheduler=scheduler_name(scheduler),
            options=(("policy", SelectionPolicy.MAX_LT.value),),
        )
        for name, source in (
            ("apsi47_like", apsi47_source()),
            ("apsi50_like", apsi50_source()),
        )
    ]
    run = run_cells(cells, jobs=jobs)
    result = Fig7Result(machine=machine.name, engine_run=run)
    for cell_result in run.results:
        result.rounds[cell_result.cell.workload] = [
            tuple(row) for row in cell_result.data["rows"]
        ]
    return result


# ======================================================================
# Figure 8 — heuristics across configurations: cycles, traffic, time
@dataclass
class Fig8Result:
    suite_size: int
    rows: list[dict] = field(default_factory=list)
    engine_run: object | None = field(default=None, repr=False)

    def render(self) -> str:
        headers = [
            "config", "registers", "variant", "cycles", "traffic",
            "attempts", "placements", "seconds", "not converged",
        ]
        table_rows = [
            [
                row["config"], row["budget"], row["variant"], row["cycles"],
                row["traffic"], row["attempts"], row["placements"],
                row["seconds"], row["failed"],
            ]
            for row in self.rows
        ]
        return format_table(
            headers,
            table_rows,
            title=(
                "Figure 8: spilling heuristics — execution cycles (8a),"
                f" memory traffic (8b), scheduling effort (8c);"
                f" suite of {self.suite_size} loops"
            ),
        )


def run_fig8(
    suite: list[Workload] | None = None,
    machines: list[MachineConfig] | None = None,
    budgets: tuple[int, ...] = DEFAULT_BUDGETS,
    variants: list[tuple[str, dict]] | None = None,
    scheduler: ModuloScheduler | None = None,
    jobs: int = 1,
) -> Fig8Result:
    from repro.eval.engine import (
        machine_spec,
        pack_options,
        run_cells,
        workload_cells,
    )

    suite = suite if suite is not None else perfect_club_like_suite()
    machines = machines if machines is not None else paper_configurations()
    variants = variants if variants is not None else FIG8_VARIANTS
    cells = []
    for machine in machines:
        if not variants:
            # baseline-only call: the ideal rows need their own cells
            cells.extend(
                workload_cells("ideal", suite, machine, scheduler=scheduler)
            )
        for budget in budgets:
            for label, options in variants:
                cells.extend(
                    workload_cells(
                        "fig8", suite, machine, budget=budget,
                        variant=label, scheduler=scheduler,
                        options=pack_options(options),
                    )
                )
    run = run_cells(cells, jobs=jobs)
    index = {
        (r.cell.machine, r.cell.budget, r.cell.variant, r.cell.workload): r
        for r in run.results
    }
    result = Fig8Result(suite_size=len(suite), engine_run=run)
    for machine in machines:
        spec = machine_spec(machine)
        for budget in budgets:
            if variants:
                ideal_rows = [
                    index[(spec, budget, variants[0][0], w.name)]
                    for w in suite
                ]
                ideal_cycles = sum(r.data["ideal_cycles"] for r in ideal_rows)
                ideal_traffic = sum(r.data["ideal_traffic"] for r in ideal_rows)
            else:
                ideal_rows = [index[(spec, 0, "", w.name)] for w in suite]
                ideal_cycles = sum(r.data["cycles"] for r in ideal_rows)
                ideal_traffic = sum(r.data["traffic"] for r in ideal_rows)
            result.rows.append(
                dict(
                    config=machine.name,
                    budget=budget,
                    variant="ideal (infinite regs)",
                    cycles=ideal_cycles,
                    traffic=ideal_traffic,
                    attempts=0,
                    placements=0,
                    seconds=0.0,
                    failed=0,
                )
            )
            for label, _ in variants:
                rows = [index[(spec, budget, label, w.name)] for w in suite]
                result.rows.append(
                    dict(
                        config=machine.name,
                        budget=budget,
                        variant=label,
                        cycles=sum(r.data["cycles"] for r in rows),
                        traffic=sum(r.data["traffic"] for r in rows),
                        attempts=sum(r.data["attempts"] for r in rows),
                        placements=sum(r.data["placements"] for r in rows),
                        seconds=sum(r.seconds for r in rows),
                        failed=sum(r.data["failed"] for r in rows),
                    )
                )
    return result


# ======================================================================
# Figure 9 — increasing the II vs adding spill code vs best of all
@dataclass
class Fig9Result:
    suite_size: int
    rows: list[tuple[str, int, int, int, int, int, int]] = field(
        default_factory=list
    )
    # (config, budget, subset size, cycles incII, cycles spill,
    #  cycles best-of-all, ideal cycles)
    engine_run: object | None = field(default=None, repr=False)

    def render(self) -> str:
        return format_table(
            [
                "config", "registers", "loops", "increase II", "spill",
                "best of all", "ideal",
            ],
            [list(row) for row in self.rows],
            title=(
                "Figure 9: II-increase vs spilling vs combined, on the"
                " subset needing register reduction where II-increase"
                f" converges (suite of {self.suite_size} loops)"
            ),
        )


def run_fig9(
    suite: list[Workload] | None = None,
    machines: list[MachineConfig] | None = None,
    budgets: tuple[int, ...] = DEFAULT_BUDGETS,
    scheduler: ModuloScheduler | None = None,
    jobs: int = 1,
) -> Fig9Result:
    from repro.eval.engine import machine_spec, run_cells, workload_cells

    suite = suite if suite is not None else perfect_club_like_suite()
    machines = machines if machines is not None else paper_configurations()
    cells = []
    for machine in machines:
        for budget in budgets:
            cells.extend(
                workload_cells(
                    "fig9", suite, machine, budget=budget,
                    scheduler=scheduler,
                )
            )
    run = run_cells(cells, jobs=jobs)
    data = {
        (r.cell.machine, r.cell.budget, r.cell.workload): r.data
        for r in run.results
    }
    result = Fig9Result(suite_size=len(suite), engine_run=run)
    for machine in machines:
        spec = machine_spec(machine)
        for budget in budgets:
            rows = [
                data[(spec, budget, w.name)]
                for w in suite
                if data[(spec, budget, w.name)]["included"]
            ]
            result.rows.append(
                (
                    machine.name,
                    budget,
                    len(rows),
                    sum(row["inc_cycles"] for row in rows),
                    sum(row["spill_cycles"] for row in rows),
                    sum(row["best_cycles"] for row in rows),
                    sum(row["ideal_cycles"] for row in rows),
                )
            )
    return result
