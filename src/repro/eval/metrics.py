"""Shared evaluation metrics.

The paper reports three quantities per experiment:

* **execution cycles** — a loop executing ``N`` iterations at initiation
  interval II with SC stages takes ``(N + SC - 1) * II`` cycles (ramp-up,
  steady state, drain); suite totals weight each loop by its execution
  count;
* **dynamic memory traffic** — memory operations in the final dependence
  graph times iterations executed (spill code adds loads/stores);
* **scheduling effort** — machine-independent scheduler work (scheduling
  attempts and slot placements) plus wall-clock time, standing in for the
  paper's HP-9000/735 compile-time measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.ddg import DDG
from repro.sched.schedule import Schedule


def executed_cycles(schedule: Schedule, iterations: int) -> int:
    """Cycles to run *iterations* iterations of *schedule*."""
    return schedule.cycles_for(iterations)


def memory_traffic(ddg: DDG, iterations: int) -> int:
    """Dynamic memory references for *iterations* iterations."""
    return ddg.memory_node_count() * iterations


@dataclass
class LoopOutcome:
    """Per-loop result of one register-constrained scheduling method."""

    name: str
    weight: int
    converged: bool
    ii: int | None
    stage_count: int | None
    registers: int | None
    memory_ops: int
    cycles: int
    traffic: int
    attempts: int = 0
    placements: int = 0
    wall_seconds: float = 0.0

    @classmethod
    def from_schedule(
        cls,
        name: str,
        weight: int,
        schedule: Schedule,
        ddg: DDG,
        registers: int | None,
        converged: bool = True,
        attempts: int = 0,
        placements: int = 0,
        wall_seconds: float = 0.0,
    ) -> "LoopOutcome":
        return cls(
            name=name,
            weight=weight,
            converged=converged,
            ii=schedule.ii,
            stage_count=schedule.stage_count,
            registers=registers,
            memory_ops=ddg.memory_node_count(),
            cycles=executed_cycles(schedule, weight),
            traffic=memory_traffic(ddg, weight),
            attempts=attempts,
            placements=placements,
            wall_seconds=wall_seconds,
        )
