"""Evaluation harness.

Per-experiment drivers that regenerate every table and figure of the
paper's Section 5 on the reproduction suite, plus the metrics they share.
Each driver returns a result object with a ``render()`` method producing
the paper-style rows; the benchmark harness under ``benchmarks/`` times
the drivers and writes the rendered output.
"""

from repro.eval.metrics import LoopOutcome, executed_cycles, memory_traffic
from repro.eval.experiments import (
    Fig4Result,
    Fig7Result,
    Fig8Result,
    Fig9Result,
    Table1Result,
    run_fig4,
    run_fig7,
    run_fig8,
    run_fig9,
    run_table1,
)
from repro.eval.reporting import format_table
from repro.eval.engine import (
    Cell,
    CellResult,
    EngineRun,
    SweepReport,
    evaluate_cell,
    machine_spec,
    resolve_machine,
    run_cells,
    run_sweep,
    workload_cells,
)

__all__ = [
    "Cell",
    "CellResult",
    "EngineRun",
    "Fig4Result",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "LoopOutcome",
    "SweepReport",
    "Table1Result",
    "evaluate_cell",
    "executed_cycles",
    "format_table",
    "machine_spec",
    "memory_traffic",
    "resolve_machine",
    "run_cells",
    "run_fig4",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_sweep",
    "run_table1",
    "workload_cells",
]
