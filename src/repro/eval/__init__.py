"""Evaluation harness.

Per-experiment drivers that regenerate every table and figure of the
paper's Section 5 on the reproduction suite, plus the metrics they share.
Each driver returns a result object with a ``render()`` method producing
the paper-style rows; the benchmark harness under ``benchmarks/`` times
the drivers and writes the rendered output.
"""

from repro.eval.metrics import LoopOutcome, executed_cycles, memory_traffic
from repro.eval.experiments import (
    Fig4Result,
    Fig7Result,
    Fig8Result,
    Fig9Result,
    Table1Result,
    run_fig4,
    run_fig7,
    run_fig8,
    run_fig9,
    run_table1,
)
from repro.eval.reporting import format_table

__all__ = [
    "Fig4Result",
    "Fig7Result",
    "Fig8Result",
    "Fig9Result",
    "LoopOutcome",
    "Table1Result",
    "executed_cycles",
    "format_table",
    "memory_traffic",
    "run_fig4",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_table1",
]
