"""Parallel, cached experiment engine.

The paper's evaluation is a grid: every artifact (Table 1, Figures 7-9,
the ablations) is a sum over independent ``(workload, machine, budget,
variant)`` **cells**.  This module makes that structure explicit:

* :class:`Cell` — one unit of work, fully described by picklable scalars
  (the loop *source*, a machine spec string, a scheduler name and an
  options tuple), so cells can cross process boundaries;
* :func:`run_cells` — evaluates a batch, either serially (``jobs=1``) or
  fanned out over a ``ProcessPoolExecutor``.  Results come back in a
  deterministic order and contain only deterministic data (wall-clock
  time and cache accounting ride along separately), so the output is
  byte-identical for any job count;
* per-process memoization — every worker shares one
  :mod:`repro.sched.cache`: the ideal (infinite-register) schedule of a
  loop is computed once per ``(graph, machine, scheduler)`` however many
  budgets/variants/artifacts ask for it, and the spilling driver's
  per-round MII lookups hit the fingerprint cache; with a persistent
  store active (``repro sweep --cache-dir``, ``run_sweep(cache_dir=)``
  or ``REPRO_CACHE_DIR``), all workers additionally share one on-disk
  :mod:`repro.sched.store`, so nothing is derived twice across
  processes *or* across sweeps;
* :func:`run_sweep` — the ``repro sweep`` entry point: builds the cells
  for the requested artifacts, runs them, aggregates the paper-style
  result objects and a machine-readable JSON document
  (``schema: repro.sweep/1``).

Cell kinds and their ``data`` payloads:

=========  ============================================================
kind       payload
=========  ============================================================
ideal      ii, stage_count, registers, cycles, traffic
table1     ideal_cycles, ideal_registers, needs_reduction, failed
fig4       trail: [[ii, registers], ...]
fig7       rows: [spilled, ii, mii, registers, bus_pct]
fig8       ideal_cycles, ideal_traffic, cycles, traffic, attempts,
           placements, failed, spilled
fig9       included, ideal/inc/spill/best cycles
spill      converged, ii, reschedules, registers, memory_ops, spilled
=========  ============================================================

Cell evaluation runs on the :func:`repro.api.compile_loop` facade:
machine specs resolve through :mod:`repro.machine.specs`, schedulers
through :mod:`repro.sched.registry` and register-pressure strategies
through :mod:`repro.core.registry` — the engine keeps no lookup tables
of its own, so a newly registered scheduler or strategy is immediately
sweepable.
"""

from __future__ import annotations

import contextlib
import json
import time
from dataclasses import dataclass, field

from repro.core.select import SelectionPolicy
from repro.faults import plan as faults
from repro.pool import imap_resilient, shutdown_pool, worker_pool
from repro.eval.metrics import executed_cycles, memory_traffic
from repro.graph.builder import ddg_from_source
from repro.graph.ddg import DDG
from repro.lifetimes.requirements import register_requirements
from repro.machine.machine import MachineConfig
from repro.machine.specs import machine_spec, resolve_machine
from repro.sched import store as sched_store
from repro.sched.base import ModuloScheduler
from repro.sched.cache import STATS, CacheStats, schedule_memo
from repro.sched.schedule import Schedule
from repro.trace import profile as trace_profile
from repro.workloads.suite import Workload

__all__ = [
    "Cell",
    "CellResult",
    "EngineRun",
    "SweepReport",
    "cell_from_wire",
    "cell_to_wire",
    "evaluate_cell",
    "machine_spec",
    "pack_options",
    "resolve_machine",
    "routed_through",
    "run_cells",
    "run_sweep",
    "scheduler_name",
    "shutdown_pool",
    "workload_cells",
]

JSON_SCHEMA = "repro.sweep/1"


# ----------------------------------------------------------------------
# scheduler specs (picklable cell fields); machine specs come from
# repro.machine.specs and are re-exported above for compatibility
def scheduler_name(scheduler: ModuloScheduler | str | None) -> str:
    """Canonical registry name a worker process can resolve back."""
    from repro.sched import registry
    from repro.sched.cache import scheduler_config

    if scheduler is None:
        return "hrms"
    if isinstance(scheduler, str):
        return registry.canonical_name(scheduler)
    name = registry.canonical_name(scheduler)
    config = scheduler_config(scheduler)
    if config != scheduler_config(registry.get_scheduler_class(name)()):
        # cells carry only the name; a worker would silently rebuild the
        # default configuration, diverging from the caller's intent
        raise ValueError(
            f"scheduler {name!r} has non-default configuration"
            f" ({config}); engine cells only support"
            " default-constructed schedulers"
        )
    return name


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Cell:
    """One independent experiment: a loop on a machine under a budget."""

    kind: str
    workload: str
    source: str
    weight: int
    machine: str
    budget: int = 0
    variant: str = ""
    scheduler: str = "hrms"
    options: tuple[tuple[str, object], ...] = ()
    #: run the repro.verify oracle on every schedule this cell produces
    #: (an invalid one raises VerificationError and aborts the sweep);
    #: deliberately not part of sort_key or as_json — verification can
    #: only kill a run, never change its bytes
    verify: bool = False

    def sort_key(self) -> tuple:
        return (
            self.kind, self.machine, self.budget, self.variant,
            self.workload, self.scheduler,
        )

    def option(self, name: str, default=None):
        for key, value in self.options:
            if key == name:
                return value
        return default

    def spill_options(self) -> dict:
        """The ``schedule_with_spilling`` keyword arguments carried by
        this cell's options tuple; unknown keys are an error (silently
        dropping one would change the run's semantics)."""
        result = {}
        for key, value in self.options:
            if key == "policy":
                result["policy"] = SelectionPolicy(value)
            elif key in ("multiple", "last_ii", "fuse",
                         "mark_non_spillable", "exact"):
                result[key] = bool(value)
            elif key == "max_rounds":
                result["max_rounds"] = int(value)
            else:
                raise ValueError(
                    f"unknown spill option {key!r} on cell"
                    f" {self.workload}/{self.variant or self.kind}"
                )
        return result


@dataclass
class CellResult:
    """Deterministic payload plus per-cell telemetry (kept out of any
    byte-compared output)."""

    cell: Cell
    data: dict
    seconds: float = 0.0
    cache: CacheStats = field(default_factory=CacheStats)

    def as_json(self) -> dict:
        return {
            "kind": self.cell.kind,
            "workload": self.cell.workload,
            "machine": self.cell.machine,
            "budget": self.cell.budget,
            "variant": self.cell.variant,
            "scheduler": self.cell.scheduler,
            "weight": self.cell.weight,
            "data": self.data,
        }


# ----------------------------------------------------------------------
# the wire shape (the cluster's ``cells`` protocol op)
def cell_to_wire(cell: Cell) -> dict:
    """One cell as a JSON-safe mapping (options become ``[key, value]``
    pairs — cell option values are already wire scalars)."""
    return {
        "kind": cell.kind,
        "workload": cell.workload,
        "source": cell.source,
        "weight": cell.weight,
        "machine": cell.machine,
        "budget": cell.budget,
        "variant": cell.variant,
        "scheduler": cell.scheduler,
        "options": [[key, value] for key, value in cell.options],
        "verify": cell.verify,
    }


def cell_from_wire(document: dict) -> Cell:
    """The inverse of :func:`cell_to_wire` (what a shard daemon runs)."""
    document = dict(document)
    options = document.pop("options", [])
    return Cell(
        kind=str(document["kind"]),
        workload=str(document["workload"]),
        source=str(document["source"]),
        weight=int(document["weight"]),
        machine=str(document["machine"]),
        budget=int(document.get("budget", 0)),
        variant=str(document.get("variant", "")),
        scheduler=str(document.get("scheduler", "hrms")),
        options=tuple((str(key), value) for key, value in options),
        verify=bool(document.get("verify", False)),
    )


# ----------------------------------------------------------------------
# per-process state (each pool worker builds its own)
_DDG_CACHE: dict[tuple[str, str], DDG] = {}


def _cell_ddg(cell: Cell) -> DDG:
    key = (cell.workload, cell.source)
    ddg = _DDG_CACHE.get(key)
    if ddg is None:
        if len(_DDG_CACHE) >= 512:
            _DDG_CACHE.pop(next(iter(_DDG_CACHE)))
        ddg = ddg_from_source(cell.source, name=cell.workload)
        _DDG_CACHE[key] = ddg
    return ddg


def _ideal_outcome(
    ddg: DDG, machine: MachineConfig, scheduler: ModuloScheduler,
    verify: bool = False,
) -> tuple[Schedule, int]:
    """Infinite-register schedule + register demand.  Both legs are
    memoized: the schedule in the process-wide memo, the register report
    on the schedule instance itself."""
    schedule = schedule_memo().schedule(scheduler, ddg, machine)
    report = register_requirements(schedule)
    if verify:
        from repro.verify import VerificationError, verify_schedule

        oracle = verify_schedule(schedule, report=report)
        if not oracle.ok:
            raise VerificationError(ddg.name, oracle)
    return schedule, report.total


def _cell_compile(cell: Cell, strategy: str, options: dict | None = None):
    """Run one cell leg through the :func:`repro.api.compile_loop`
    facade: every strategy comes back as the same
    :class:`~repro.api.CompilationResult` shape, so the evaluators below
    contain no per-driver result-type special-casing."""
    from repro.api import compile_loop

    return compile_loop(
        _cell_ddg(cell),
        machine=cell.machine,
        scheduler=cell.scheduler,
        strategy=strategy,
        registers=cell.budget,
        options=options,
        verify=cell.verify,
    )


# ----------------------------------------------------------------------
# cell evaluation
def evaluate_cell(cell: Cell) -> CellResult:
    """Evaluate one cell (runs inside a worker process)."""
    if faults.enabled():
        faults.maybe_kill("pool.kill_before_cell")
        faults.maybe_hang("pool.hang_cell")
    before = STATS.snapshot()
    started = time.perf_counter()
    with trace_profile.profiled_span(
        "cell", "worker",
        attrs={"workload": cell.workload, "kind": cell.kind},
    ):
        data = _EVALUATORS[cell.kind](cell)
    if faults.enabled():
        faults.maybe_kill("pool.kill_after_cell")
    return CellResult(
        cell=cell,
        data=data,
        seconds=time.perf_counter() - started,
        cache=STATS.delta(before),
    )


def _cell_context(cell: Cell):
    from repro.sched.registry import create_scheduler

    return (
        _cell_ddg(cell),
        resolve_machine(cell.machine),
        create_scheduler(cell.scheduler),
    )


def _eval_ideal(cell: Cell) -> dict:
    ddg, machine, scheduler = _cell_context(cell)
    schedule, registers = _ideal_outcome(ddg, machine, scheduler, verify=cell.verify)
    return {
        "ii": schedule.ii,
        "stage_count": schedule.stage_count,
        "registers": registers,
        "cycles": executed_cycles(schedule, cell.weight),
        "traffic": memory_traffic(ddg, cell.weight),
    }


def _eval_table1(cell: Cell) -> dict:
    ddg, machine, scheduler = _cell_context(cell)
    schedule, registers = _ideal_outcome(ddg, machine, scheduler, verify=cell.verify)
    data = {
        "ideal_cycles": executed_cycles(schedule, cell.weight),
        "ideal_registers": registers,
        "needs_reduction": registers > cell.budget,
        "failed": False,
    }
    if data["needs_reduction"]:
        outcome = _cell_compile(
            cell, "increase",
            {"patience": int(cell.option("patience", 10))},
        )
        data["failed"] = not outcome.converged
    return data


def _eval_fig4(cell: Cell) -> dict:
    """One long II sweep down to an impossible budget: the whole
    registers-vs-II curve of Figure 4 in one compile."""
    run = _cell_compile(
        cell, "increase",
        {
            "patience": int(cell.option("patience", 18)),
            "max_ii": int(cell.option("max_ii", 120)),
            "stop_on_certificate": False,
        },
    )
    return {
        "trail": [[row["ii"], row["registers"]] for row in run.trace],
    }


def _eval_fig7(cell: Cell) -> dict:
    run = _cell_compile(
        cell, "spill",
        {
            "policy": cell.option("policy", "max_lt"),
            "multiple": False,
            "last_ii": False,
        },
    )
    machine = resolve_machine(cell.machine)
    buses = machine.memory_units()
    rows = []
    spilled_so_far = 0
    for entry in run.trace:
        bus = 100.0 * entry["memory_ops"] / (buses * entry["ii"])
        rows.append(
            [spilled_so_far, entry["ii"], entry["mii"],
             entry["registers"], bus]
        )
        spilled_so_far += len(entry["spilled"])
    return {"rows": rows, "converged": run.converged}


def _eval_fig8(cell: Cell) -> dict:
    ddg, machine, scheduler = _cell_context(cell)
    schedule, registers = _ideal_outcome(ddg, machine, scheduler, verify=cell.verify)
    ideal_cycles = executed_cycles(schedule, cell.weight)
    ideal_traffic = memory_traffic(ddg, cell.weight)
    data = {
        "ideal_cycles": ideal_cycles,
        "ideal_traffic": ideal_traffic,
        "ideal_registers": registers,
        "cycles": ideal_cycles,
        "traffic": ideal_traffic,
        "attempts": 0,
        "placements": 0,
        "failed": 0,
        "spilled": 0,
    }
    if registers <= cell.budget:
        return data
    run = _cell_compile(cell, "spill", dict(cell.spill_options()))
    final = run.schedule if run.schedule is not None else schedule
    final_ddg = run.ddg if run.ddg is not None else ddg
    data.update(
        cycles=executed_cycles(final, cell.weight),
        traffic=memory_traffic(final_ddg, cell.weight),
        attempts=run.attempts,
        placements=run.placements,
        failed=0 if run.converged else 1,
        spilled=len(run.spilled),
    )
    return data


def _eval_fig9(cell: Cell) -> dict:
    ddg, machine, scheduler = _cell_context(cell)
    schedule, registers = _ideal_outcome(ddg, machine, scheduler, verify=cell.verify)
    data = {
        "included": False,
        "ideal_cycles": 0,
        "inc_cycles": 0,
        "spill_cycles": 0,
        "best_cycles": 0,
    }
    if registers <= cell.budget:
        return data
    inc = _cell_compile(cell, "increase")
    if not inc.converged:
        return data  # the paper's comparison excludes these
    spill = _cell_compile(cell, "spill")
    best = _cell_compile(cell, "combined")
    spill_schedule = spill.schedule or inc.schedule
    best_schedule = best.schedule or spill_schedule
    data.update(
        included=True,
        ideal_cycles=executed_cycles(schedule, cell.weight),
        inc_cycles=executed_cycles(inc.schedule, cell.weight),
        spill_cycles=executed_cycles(spill_schedule, cell.weight),
        best_cycles=executed_cycles(best_schedule, cell.weight),
    )
    return data


def _eval_spill(cell: Cell) -> dict:
    """Generic spilling-driver cell (ablation benchmarks)."""
    run = _cell_compile(cell, "spill", dict(cell.spill_options()))
    valid = run.schedule is not None
    if valid:
        try:
            run.schedule.validate()
            run.ddg.validate()
        except AssertionError:
            valid = False
    return {
        "converged": run.converged,
        "ii": run.ii,
        "reschedules": len(run.trace),
        "registers": run.registers_used if run.schedule is not None else None,
        "memory_ops": run.memory_ops,
        "spilled": len(run.spilled),
        "attempts": run.attempts,
        "placements": run.placements,
        "valid": valid,
    }


_EVALUATORS = {
    "ideal": _eval_ideal,
    "table1": _eval_table1,
    "fig4": _eval_fig4,
    "fig7": _eval_fig7,
    "fig8": _eval_fig8,
    "fig9": _eval_fig9,
    "spill": _eval_spill,
}


# ----------------------------------------------------------------------
# execution
@dataclass
class EngineRun:
    """A batch of evaluated cells plus aggregate telemetry."""

    results: list[CellResult]
    jobs: int
    seconds: float
    cache: CacheStats

    def by_kind(self, kind: str) -> list[CellResult]:
        return [r for r in self.results if r.cell.kind == kind]


# The persistent worker pool lives in repro.pool: it is shared with the
# Pipeline batch service, keyed by (jobs, active store), and reused
# across batches so the workers' caches stay warm for a whole sweep
# (one artifact's ideal pass serves the next's).
_worker_pool = worker_pool

# When set (via routed_through), run_cells ships cells to a
# repro.cluster.ClusterClient instead of evaluating locally — the hook
# sits here so every experiment runner (run_table1, run_fig8, ...)
# routes without signature changes.
_ACTIVE_CLUSTER = None

# When set (via verified_cells / run_sweep(verify=True)), run_cells
# stamps verify=True onto every cell before evaluation — same
# no-signature-changes trick as _ACTIVE_CLUSTER, and the stamp rides the
# cell through pickling (pool workers) and the wire (cluster shards).
_VERIFY_CELLS = False


@contextlib.contextmanager
def verified_cells():
    """Oracle-check every schedule produced by :func:`run_cells` calls
    inside the block (``repro sweep --verify``).  Output bytes are
    unchanged — an invalid schedule raises
    :class:`repro.verify.VerificationError` instead."""
    global _VERIFY_CELLS
    previous = _VERIFY_CELLS
    _VERIFY_CELLS = True
    try:
        yield
    finally:
        _VERIFY_CELLS = previous


@contextlib.contextmanager
def routed_through(cluster):
    """Route every :func:`run_cells` call inside the block through
    *cluster* (a :class:`repro.cluster.ClusterClient`).  Results are
    byte-identical to local evaluation; only where the work runs (and
    whose caches warm up) changes."""
    global _ACTIVE_CLUSTER
    previous = _ACTIVE_CLUSTER
    _ACTIVE_CLUSTER = cluster
    try:
        yield cluster
    finally:
        _ACTIVE_CLUSTER = previous


def run_cells(cells: list[Cell], jobs: int = 1) -> EngineRun:
    """Evaluate *cells*; results are sorted by cell key, so the outcome
    is identical whatever *jobs* is (and whether they run locally or on
    a routed cluster)."""
    from repro.sched.cache import caching_enabled

    ordered = sorted(cells, key=Cell.sort_key)
    if _VERIFY_CELLS:
        from dataclasses import replace

        ordered = [replace(cell, verify=True) for cell in ordered]
    started = time.perf_counter()
    if _ACTIVE_CLUSTER is not None and ordered:
        results, cache = _ACTIVE_CLUSTER.run_cells(ordered)
        return EngineRun(
            results=results,
            jobs=jobs,
            seconds=time.perf_counter() - started,
            cache=cache,
        )
    # cache.disabled() is process-local: worker processes would cache
    # anyway (or inherit a frozen flag at fork time), so honour it by
    # evaluating serially in this process.
    if jobs <= 1 or len(ordered) <= 1 or not caching_enabled():
        results = [evaluate_cell(cell) for cell in ordered]
    else:
        chunk = max(1, len(ordered) // (jobs * 4))
        results = list(
            imap_resilient(evaluate_cell, ordered, jobs, chunksize=chunk)
        )
    cache = CacheStats()
    for result in results:
        cache.add(result.cache)
    return EngineRun(
        results=results,
        jobs=jobs,
        seconds=time.perf_counter() - started,
        cache=cache,
    )


def workload_cells(
    kind: str,
    suite: list[Workload],
    machine: MachineConfig,
    budget: int = 0,
    variant: str = "",
    scheduler: ModuloScheduler | None = None,
    options: dict | None = None,
) -> list[Cell]:
    """Cells of *kind* for every workload of *suite* on one machine."""
    spec = machine_spec(machine)
    name = scheduler_name(scheduler)
    packed = tuple(sorted((options or {}).items()))
    return [
        Cell(
            kind=kind,
            workload=workload.name,
            source=workload.source,
            weight=workload.weight,
            machine=spec,
            budget=budget,
            variant=variant,
            scheduler=name,
            options=packed,
        )
        for workload in suite
    ]


def pack_options(options: dict) -> dict:
    """Normalize driver options into picklable/JSON-able scalars."""
    packed = {}
    for key, value in options.items():
        packed[key] = value.value if isinstance(value, SelectionPolicy) else value
    return packed


# ----------------------------------------------------------------------
# sweep — the one-command reproduction entry point
@dataclass
class SweepReport:
    """Everything one ``repro sweep`` produced."""

    suite_info: dict
    artifacts: dict  # name -> result object with .render()
    run: EngineRun
    jobs: int

    def render(self) -> str:
        blocks = []
        for name in sorted(self.artifacts):
            rendered = self.artifacts[name].render()
            if "@" in name:
                # multi-scheduler sweeps key artifacts as name@scheduler;
                # the result objects' own titles do not carry the axis
                rendered = f"[{name}]\n{rendered}"
            blocks.append(rendered)
        blocks.append(self.summary())
        return "\n\n".join(blocks)

    def summary(self) -> str:
        """One-line wall-clock + cache telemetry (stdout only — never
        part of the byte-compared JSON)."""
        cache = self.run.cache
        line = (
            f"sweep: {len(self.run.results)} cells, jobs={self.jobs},"
            f" {self.run.seconds:.2f}s wall;"
            f" cache hits/misses: schedule {cache.schedule_hits}"
            f"/{cache.schedule_misses}, MII {cache.mii_hits}"
            f"/{cache.mii_misses}, spill runs {cache.spill_hits}"
            f"/{cache.spill_misses}, alloc {cache.alloc_hits}"
            f"/{cache.alloc_misses}"
        )
        lookups = cache.store_hits + cache.store_misses
        if lookups:
            share = 100.0 * cache.store_hits / lookups
            line += (
                f", store {cache.store_hits}/{cache.store_misses}"
                f" ({share:.0f}% hits)"
            )
        return line

    def to_json(self) -> dict:
        """Machine-readable results: deterministic for any job count
        (no wall-clock, no cache telemetry)."""
        artifacts = {}
        for name, result in self.artifacts.items():
            artifacts[name] = _artifact_json(name, result)
        return {
            "schema": JSON_SCHEMA,
            "suite": self.suite_info,
            "artifacts": artifacts,
            "cells": [
                result.as_json()
                for result in sorted(
                    self.run.results, key=lambda r: r.cell.sort_key()
                )
            ],
        }

    def to_json_text(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)


def _artifact_json(name: str, result) -> dict:
    name = name.split("@", 1)[0]  # "table1@swing" → the table1 shape
    if name == "table1":
        return {"rows": [list(row) for row in result.rows]}
    if name == "fig4":
        return {
            "machine": result.machine,
            "trails": {
                loop: [list(point) for point in trail]
                for loop, trail in result.trails.items()
            },
            "converged": {
                loop: {str(budget): ii for budget, ii in budgets.items()}
                for loop, budgets in result.converged.items()
            },
        }
    if name == "fig7":
        return {"machine": result.machine, "rounds": result.rounds}
    if name == "fig8":
        rows = []
        for row in result.rows:
            trimmed = dict(row)
            trimmed.pop("seconds", None)  # wall-clock is not comparable
            rows.append(trimmed)
        return {"rows": rows}
    if name == "fig9":
        return {"rows": [list(row) for row in result.rows]}
    raise ValueError(f"unknown artifact {name!r}")


def filter_suite(suite: list[Workload], categories) -> list[Workload]:
    """The workloads of *suite* whose ``category`` is in *categories*
    (a comma-separated string or an iterable).  Unknown categories and
    an empty selection raise :class:`ValueError` — a silent empty sweep
    would look like a clean zero-row artifact."""
    if isinstance(categories, str):
        wanted = {part.strip() for part in categories.split(",") if part.strip()}
    else:
        wanted = {str(part) for part in categories}
    available = {workload.category for workload in suite}
    unknown = sorted(wanted - available)
    if unknown:
        raise ValueError(
            f"unknown suite categor{'y' if len(unknown) == 1 else 'ies'}"
            f" {', '.join(map(repr, unknown))}"
            f" (this suite has: {', '.join(sorted(available))})"
        )
    filtered = [w for w in suite if w.category in wanted]
    if not filtered:
        raise ValueError("suite filter selected no workloads")
    return filtered


def run_sweep(
    suite: list[Workload] | None = None,
    machines: list[MachineConfig] | None = None,
    budgets: tuple[int, ...] = (64, 32),
    artifacts: tuple[str, ...] = ("table1", "fig8"),
    jobs: int = 1,
    scheduler: "ModuloScheduler | list | tuple | None" = None,
    suite_info: dict | None = None,
    cache_dir: "str | sched_store.ScheduleStore | None" = None,
    suite_filter: "str | list[str] | None" = None,
    cluster=None,
    verify: bool = False,
) -> SweepReport:
    """Regenerate the requested paper artifacts in one engine pass.

    ``scheduler`` may be a list/tuple: the whole artifact grid is then
    run once per scheduler into one combined report, with artifact keys
    ``"table1@hrms"``-style and every cell carrying its scheduler (one
    jobs-deterministic JSON document for the entire grid).
    ``suite_filter`` restricts the suite to the named workload
    categories (see :func:`filter_suite`).  ``cache_dir`` (a directory
    path or a :class:`~repro.sched.store.ScheduleStore`) activates the
    persistent store for the whole sweep (parent process and every
    worker) — a repeated sweep into the same directory is served from
    disk and produces byte-identical JSON.  ``cluster`` (a
    :class:`repro.cluster.ClusterClient` or a ``host:port,host:port``
    address string — ``repro sweep --connect``) routes every cell
    through the sharded daemons instead of local evaluation; the JSON
    stays byte-identical either way.
    """
    if cache_dir is not None:
        with sched_store.using(cache_dir):
            return run_sweep(
                suite=suite, machines=machines, budgets=budgets,
                artifacts=artifacts, jobs=jobs, scheduler=scheduler,
                suite_info=suite_info, suite_filter=suite_filter,
                cluster=cluster, verify=verify,
            )
    if cluster is not None:
        if isinstance(cluster, (str, list, tuple)):
            from repro.cluster import ClusterClient

            with ClusterClient(cluster) as owned:
                with routed_through(owned):
                    return run_sweep(
                        suite=suite, machines=machines, budgets=budgets,
                        artifacts=artifacts, jobs=jobs,
                        scheduler=scheduler, suite_info=suite_info,
                        suite_filter=suite_filter, verify=verify,
                    )
        with routed_through(cluster):
            return run_sweep(
                suite=suite, machines=machines, budgets=budgets,
                artifacts=artifacts, jobs=jobs, scheduler=scheduler,
                suite_info=suite_info, suite_filter=suite_filter,
                verify=verify,
            )
    from repro.eval import experiments
    from repro.machine.machine import paper_configurations
    from repro.workloads.suite import perfect_club_like_suite

    suite = suite if suite is not None else perfect_club_like_suite()
    if suite_filter:
        suite = filter_suite(suite, suite_filter)
    machines = machines if machines is not None else paper_configurations()
    if isinstance(scheduler, (list, tuple)):
        schedulers = list(scheduler) if scheduler else [None]
    else:
        schedulers = [scheduler]
    scheduler_labels = [scheduler_name(s) for s in schedulers]
    if len(set(scheduler_labels)) != len(scheduler_labels):
        raise ValueError(
            f"duplicate schedulers in sweep: {scheduler_labels}"
        )
    multi = len(schedulers) > 1

    def runners_for(sched):
        return {
            "table1": lambda: experiments.run_table1(
                suite, machines, budgets, scheduler=sched, jobs=jobs
            ),
            # fig4 and fig7 are single-machine curves: they follow the
            # first machine filter and their own register targets, not
            # the sweep budgets.
            "fig4": lambda: experiments.run_fig4(
                machine=machines[0], scheduler=sched, jobs=jobs
            ),
            "fig7": lambda: experiments.run_fig7(
                machine=machines[0], scheduler=sched, jobs=jobs
            ),
            "fig8": lambda: experiments.run_fig8(
                suite, machines, budgets, scheduler=sched, jobs=jobs
            ),
            "fig9": lambda: experiments.run_fig9(
                suite, machines, budgets, scheduler=sched, jobs=jobs
            ),
        }

    unknown = set(artifacts) - set(runners_for(None))
    if unknown:
        raise ValueError(f"unknown artifacts: {sorted(unknown)}")

    started = time.perf_counter()
    produced = {}
    results: list[CellResult] = []
    cache = CacheStats()
    verify_context = verified_cells() if verify else contextlib.nullcontext()
    with verify_context:
        for sched, label in zip(schedulers, scheduler_labels):
            runners = runners_for(sched)
            for name in artifacts:
                result = runners[name]()
                produced[f"{name}@{label}" if multi else name] = result
                run = result.engine_run
                results.extend(run.results)
                cache.add(run.cache)
    engine_run = EngineRun(
        results=results,
        jobs=jobs,
        seconds=time.perf_counter() - started,
        cache=cache,
    )
    info = dict(suite_info or {})
    info.setdefault("size", len(suite))
    info["machines"] = [machine_spec(m) for m in machines]
    info["budgets"] = list(budgets)
    info["artifacts"] = sorted(artifacts)
    info["schedulers"] = scheduler_labels
    if suite_filter:
        info["suite_filter"] = (
            suite_filter if isinstance(suite_filter, str)
            else ",".join(suite_filter)
        )
    return SweepReport(
        suite_info=info,
        artifacts=produced,
        run=engine_run,
        jobs=jobs,
    )
