"""Plain-text table rendering for the experiment reports."""

from __future__ import annotations


def format_table(
    headers: list[str], rows: list[list[object]], title: str | None = None
) -> str:
    """Fixed-width table; numbers right-aligned, text left-aligned."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for source_row, row in zip(rows, cells):
        rendered = []
        for index, cell in enumerate(row):
            if isinstance(source_row[index], (int, float)):
                rendered.append(cell.rjust(widths[index]))
            else:
                rendered.append(cell.ljust(widths[index]))
        lines.append("  ".join(rendered))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
