"""The line-delimited JSON wire protocol (schema ``repro.server/1``).

One request per line, one response line per request — the same envelope
over stdio, a unix socket, TCP, or any stream transport:

    → {"op": "compile", "id": 1, "request": {"loop": "x[i] = y[i]+a"}}
    ← {"id": 1, "ok": true, "result": {"schema": "repro.compile/1", ...}}

Operations:

=============  ========================================================
op             meaning
=============  ========================================================
compile        ``request`` is one compile-request mapping (the
               :meth:`repro.api.Pipeline.compile_many` shape); the
               response carries one ``repro.compile/1`` document
compile_many   ``requests`` is a list of mappings; the response carries
               ``results`` in request order (duplicates coalesce onto
               one computation server-side)
cells          ``cells`` is a list of experiment-engine cell mappings
               (:func:`repro.eval.engine.cell_to_wire`); the response
               carries ``results`` — one deterministic cell-data dict
               per cell, in request order — plus the batch's ``cache``
               counter movement (how ``repro sweep --connect`` routes
               engine cells through a shard)
stats          the service's ``/stats`` telemetry document
health         the service's ``/healthz`` liveness document
shutdown       acknowledge, then stop the daemon
=============  ========================================================

**Authentication.**  A daemon started with a shared token (``repro
serve --token`` / ``$REPRO_TOKEN``) rejects, at this layer, every
operation whose line does not carry a matching ``"token"`` field —
before any request material is parsed or compiled.  Comparison is
constant-time (:func:`check_token`), so the token cannot be recovered
through timing.  The stdio transport stays unauthenticated (it *is*
the operator's own pipe); socket, TCP and HTTP transports all enforce.

Error responses are ``{"id": ..., "ok": false, "error": "message"}``;
a line that is not valid JSON gets an ``id: null`` error response.
Result documents are serialized with sorted keys, so a response line is
byte-stable and safe to compare across transports, job counts and
server restarts.
"""

from __future__ import annotations

import hmac
import json

from repro.trace import context as trace_context

PROTOCOL_SCHEMA = "repro.server/1"

#: Operations a protocol line may carry.
OPS = ("compile", "compile_many", "cells", "stats", "health", "shutdown")

#: The error message every unauthenticated request gets (transports
#: match on it to map auth failures to their own status codes).
UNAUTHORIZED = "unauthorized: missing or invalid token"


def check_token(provided, expected: "str | None") -> bool:
    """Whether *provided* authenticates against *expected*.

    ``expected=None`` means the daemon runs without authentication and
    everything passes.  Otherwise the comparison is constant-time
    (``hmac.compare_digest``) over the UTF-8 bytes, and a missing or
    non-string *provided* fails without shortcutting.
    """
    if expected is None:
        return True
    candidate = provided if isinstance(provided, str) else ""
    return hmac.compare_digest(
        candidate.encode("utf-8"), expected.encode("utf-8")
    )


def encode(document: dict) -> bytes:
    """One wire line: compact JSON with sorted keys plus newline."""
    return (
        json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def ok_response(request_id, **payload) -> dict:
    return {"id": request_id, "ok": True, **payload}


def error_response(request_id, message: str, kind: "str | None" = None) -> dict:
    """An ``ok: false`` response.  Generic failures keep the exact
    legacy shape; typed failures (*kind* of ``timeout`` / ``busy`` /
    ``shutting_down``) additionally carry a ``"kind"`` field so clients
    can react without parsing the message text."""
    document = {"id": request_id, "ok": False, "error": str(message)}
    if kind is not None:
        document["kind"] = kind
    return document


def error_kind(error: BaseException) -> "str | None":
    """The protocol ``kind`` tag for a typed service failure (None for
    every generic error)."""
    from repro.server.service import (
        ServiceBusy,
        ServiceClosed,
        ServiceTimeout,
    )

    if isinstance(error, ServiceTimeout):
        return "timeout"
    if isinstance(error, ServiceBusy):
        return "busy"
    if isinstance(error, ServiceClosed):
        # covers ServiceShuttingDown too: a daemon whose service is
        # closed or draining should be routed away from, so both states
        # surface as the transient "shutting_down" kind
        return "shutting_down"
    return None


def parse_deadline_ms(message: dict) -> "float | None":
    """The optional ``deadline_ms`` field of a protocol line (a positive
    number of milliseconds), validated."""
    deadline_ms = message.get("deadline_ms")
    if deadline_ms is None:
        return None
    if not isinstance(deadline_ms, (int, float)) or isinstance(
        deadline_ms, bool
    ) or deadline_ms <= 0:
        raise ValueError("'deadline_ms' must be a positive number")
    return float(deadline_ms)


def handle_line(
    service, line: "str | bytes", shutdown=None, token: "str | None" = None
) -> dict:
    """Dispatch one protocol line against *service* and return the
    response document.  Never raises: every failure mode — bad JSON, an
    unknown op, a malformed request, a compile-time error — becomes an
    ``ok: false`` response so one poisoned line cannot kill a
    connection.  *shutdown* is called (if given) after a ``shutdown``
    op is acknowledged.  With *token* set, any line whose ``"token"``
    field does not match is rejected before its op is looked at.
    """
    try:
        message = json.loads(line)
    except (ValueError, UnicodeDecodeError) as error:
        return error_response(None, f"invalid JSON: {error}")
    if not isinstance(message, dict):
        return error_response(None, "protocol line must be a JSON object")
    request_id = message.get("id")
    if not check_token(message.get("token"), token):
        return error_response(request_id, UNAUTHORIZED)
    op = message.get("op")
    # The optional out-of-band "trace" envelope field: requests arriving
    # with a (valid) propagated trace context are recorded under a
    # server.<op> span whatever this daemon's own tracing switch says.
    # Response bytes are unaffected — server_scope is a nullcontext when
    # the field is absent or malformed.
    try:
        if op == "compile":
            request = message.get("request")
            if not isinstance(request, dict):
                raise ValueError("'compile' needs a 'request' mapping")
            deadline_ms = parse_deadline_ms(message)
            with trace_context.server_scope(message.get("trace"), op):
                result = service.compile(request, deadline_ms=deadline_ms)
            return ok_response(request_id, result=result.to_json())
        if op == "compile_many":
            requests = message.get("requests")
            if not isinstance(requests, list) or not all(
                isinstance(request, dict) for request in requests
            ):
                raise ValueError(
                    "'compile_many' needs a 'requests' list of mappings"
                )
            deadline_ms = parse_deadline_ms(message)
            with trace_context.server_scope(message.get("trace"), op):
                results = service.compile_many(
                    requests, deadline_ms=deadline_ms
                )
            return ok_response(
                request_id, results=[result.to_json() for result in results]
            )
        if op == "cells":
            cells = message.get("cells")
            if not isinstance(cells, list) or not all(
                isinstance(cell, dict) for cell in cells
            ):
                raise ValueError("'cells' needs a 'cells' list of mappings")
            with trace_context.server_scope(message.get("trace"), op):
                results, cache = service.evaluate_cells(cells)
            return ok_response(request_id, results=results, cache=cache)
        if op == "stats":
            return ok_response(request_id, stats=service.stats())
        if op == "health":
            return ok_response(request_id, health=service.healthz())
        if op == "shutdown":
            if shutdown is not None:
                shutdown()
            return ok_response(request_id, shutdown=True)
        raise ValueError(
            f"unknown op {op!r} (expected one of: {', '.join(OPS)})"
        )
    except Exception as error:
        return error_response(request_id, error, kind=error_kind(error))
