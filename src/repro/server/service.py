"""The transport-agnostic compilation service core.

:class:`CompileService` is what every transport (stdio, socket, HTTP —
see :mod:`repro.server.daemon`) hands requests to.  It owns exactly one
:class:`repro.api.Pipeline` — and therefore one warm persistent worker
pool and one shared :class:`repro.sched.store.ScheduleStore` — for the
whole daemon lifetime, and turns many concurrent single-request clients
into the batch shape the pipeline is fastest at:

* **Request queue + batching.**  ``submit()`` enqueues and returns a
  future; a dispatcher thread drains the queue, waits one short batch
  window for stragglers, and runs the whole group through
  :meth:`Pipeline.compile_many` — so eight clients arriving together
  cost one batch, not eight independent compiles.
* **In-flight coalescing.**  Requests are keyed by the same material the
  memo/store layers use (:func:`repro.sched.cache.compile_request_key`:
  DDG fingerprint, machine, scheduler, strategy, budget, options — plus
  the loop name, which is part of the response document).  A request
  whose key is already queued or executing does not enqueue again: it
  receives the in-flight computation's future, so identical concurrent
  requests schedule exactly once.
* **Determinism.**  Results are the pipeline's service shape (volatile
  fields — ``wall_seconds`` and the cache-warmth-dependent work
  counters — zeroed, heavyweight artifacts stripped), so a served
  response is byte-identical to a direct in-process
  ``Pipeline.compile_many`` result, whatever the batching or coalescing
  did.
* **Telemetry.**  :meth:`stats` reports service counters (requests,
  batches, coalesced, errors, routed cell batches), the
  :class:`repro.sched.cache.CacheStats` movement and the PR-4
  :data:`repro.graph.index.WORK` counters for the server lifetime,
  the **aggregated worker-process counters** (``workers`` block — with
  ``jobs > 1`` the schedule computations happen in pool workers, and
  this is where their warm-pool hits show up), store telemetry, the
  worker-pool state, and the metrics recorder's latency/counter digest
  — the ``/stats`` endpoint.
* **Metrics.**  Every service owns a
  :class:`repro.metrics.MetricsRecorder`: per-request latency
  histograms, batch sizes, coalesced hits and per-batch CacheStats
  deltas, flushed as time-series rows into SQLite when the recorder has
  a database (``repro serve --cache-dir`` puts it at
  ``<cache-dir>/metrics.sqlite``).
"""

from __future__ import annotations

import contextlib
import threading
import time
from collections import deque
from concurrent.futures import Future

from repro import pool as worker_pool_mod
from repro.api import Pipeline
from repro.graph.index import WORK
from repro.metrics import MetricsRecorder
from repro.metrics.prom import render_prometheus
from repro.sched import store as sched_store
from repro.sched.cache import STATS, CacheStats, compile_request_key
from repro.trace import context as trace_context

STATS_SCHEMA = "repro.server-stats/2"
HEALTH_SCHEMA = "repro.server-health/1"


class ServiceClosed(RuntimeError):
    """Raised by :meth:`CompileService.submit` after :meth:`close`."""


class ServiceShuttingDown(ServiceClosed):
    """Raised by :meth:`CompileService.submit` while draining: the
    daemon is finishing in-flight work but accepts nothing new."""


class ServiceBusy(RuntimeError):
    """Raised by :meth:`CompileService.submit` when the bounded request
    queue is full — explicit load-shedding instead of unbounded
    buffering (clients should back off and retry elsewhere)."""


class ServiceTimeout(TimeoutError):
    """A request's ``deadline_ms`` expired before (or while) it was
    compiled.  A ``TimeoutError`` subclass, so generic timeout handling
    catches it too."""


class _Inflight:
    """One queued-or-executing unique request and its shared future."""

    __slots__ = ("future", "request", "deadline", "trace", "enqueued")

    def __init__(self, request: dict, deadline: float | None = None) -> None:
        self.future: Future = Future()
        self.request = request
        self.deadline = deadline
        # the submitting thread's propagated trace context (set under
        # the protocol's server span), if any — queue/batch spans and
        # the worker compile span all hang off it
        self.trace = trace_context.current()
        self.enqueued = time.perf_counter()


class CompileService:
    """One warm pipeline behind a batching, coalescing request queue.

    Arguments:
        pipeline: the :class:`~repro.api.Pipeline` to serve (its
            defaults fill omitted request fields).  Built from *cache*
            with stock defaults when not given.
        cache: persistent store directory (or
            :class:`~repro.sched.store.ScheduleStore`) when *pipeline*
            is not given.
        jobs: pool width for each batch (``1`` = compile in the
            dispatcher thread; memos still make repeats free).
        batch_window: seconds the dispatcher waits after the first
            queued request for more to arrive before compiling.
        max_batch: largest group handed to one ``compile_many`` call.
        metrics: a :class:`repro.metrics.MetricsRecorder` (or a
            database path for one).  Defaults to a purely in-memory
            recorder, so the telemetry surface is always present; the
            service owns the recorder and closes it on :meth:`close`.
        start: start the dispatcher thread immediately.  Tests pass
            ``False`` to stage several duplicate submissions and then
            :meth:`start` the dispatcher, making coalescing assertions
            deterministic.
    """

    def __init__(
        self,
        pipeline: Pipeline | None = None,
        cache: "sched_store.ScheduleStore | str | None" = None,
        jobs: int = 1,
        batch_window: float = 0.002,
        max_batch: int = 64,
        max_queue: int = 256,
        metrics: "MetricsRecorder | str | None" = None,
        start: bool = True,
    ) -> None:
        self.pipeline = pipeline if pipeline is not None else Pipeline(cache=cache)
        self.jobs = max(1, int(jobs))
        self.batch_window = batch_window
        self.max_batch = max(1, int(max_batch))
        self.max_queue = max(1, int(max_queue))
        if isinstance(metrics, MetricsRecorder):
            self.metrics = metrics
        else:  # None → in-memory only; a path → SQLite-backed
            self.metrics = MetricsRecorder(db=metrics)
        self.started_at = time.time()
        self._lock = threading.Condition()
        # pipeline state (the parsed-DDG cache and its eviction) is not
        # thread-safe; every transport thread parses under this lock
        self._parse_lock = threading.Lock()
        # engine-cell evaluation mutates process-wide memos; one batch
        # of routed cells runs at a time
        self._cells_lock = threading.Lock()
        self._queue: deque[tuple] = deque()
        self._inflight: dict[tuple, _Inflight] = {}
        self._closed = False
        self._draining = False
        self._dispatcher: threading.Thread | None = None
        # lifetime baselines: /stats reports movement since construction
        self._cache_base = STATS.snapshot()
        self._work_base = WORK.snapshot()
        self._worker_counters_last: dict[str, int] = {}
        self.requests_total = 0
        self.coalesced_total = 0
        self.batches_total = 0
        self.compiled_total = 0
        self.errors_total = 0
        self.cells_total = 0
        self.cell_batches_total = 0
        self.shed_total = 0
        self.timeouts_total = 0
        # whether any traced request ever reached a batch — gates the
        # (pool-probing) worker span drain so untraced daemons never pay
        self._traced_seen = False
        if self.jobs > 1:
            # warm the shared pool under this pipeline's store so the
            # first batch pays no worker spin-up
            context = (
                sched_store.using(self.pipeline.cache)
                if self.pipeline.cache is not None
                else contextlib.nullcontext()
            )
            with context:
                worker_pool_mod.warm_pool(self.jobs)
        if start:
            self.start()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the dispatcher thread (idempotent)."""
        with self._lock:
            if self._dispatcher is not None or self._closed:
                return
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop,
                name="repro-server-dispatch",
                daemon=True,
            )
            self._dispatcher.start()

    def drain(self) -> None:
        """Enter drain mode: new :meth:`submit` calls fail with
        :class:`ServiceShuttingDown` while already-queued and in-flight
        work still completes.  ``repro serve`` drains on SIGTERM and
        only then tears the transports down, so a graceful stop never
        drops accepted work.  The metrics recorder (and any buffered
        trace spans) flush here, so a SIGTERM'd shard never loses its
        final interval."""
        with self._lock:
            self._draining = True
            self._lock.notify_all()
        self._flush_spans(collect_workers=True)
        self.metrics.flush()

    def wait_idle(self, timeout: float = 30.0) -> bool:
        """Block until no work is queued or in flight (or *timeout*
        elapses); returns whether the service went idle."""
        limit = time.monotonic() + timeout
        while time.monotonic() < limit:
            with self._lock:
                if not self._queue and not self._inflight:
                    return True
            time.sleep(0.02)
        with self._lock:
            return not self._queue and not self._inflight

    def close(self) -> None:
        """Stop accepting work, finish the queue, stop the dispatcher.
        The worker pool is left alive (it is process-wide and shared)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._lock.notify_all()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=30)
        self._flush_spans(collect_workers=True)
        self.metrics.close()

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def request_key(self, request: dict) -> tuple:
        """The coalescing identity of *request*: the memo/store key
        material plus the loop name (equal keys ⇒ byte-identical
        response documents)."""
        with self._parse_lock:
            normalized = self.pipeline.normalize_request(request)
            ddg = self.pipeline.ddg(normalized["loop"], normalized["name"])
        return (
            normalized["name"],
            *compile_request_key(
                ddg,
                normalized["machine"],
                normalized["scheduler"],
                normalized["strategy"],
                normalized["registers"],
                normalized["options"],
            ),
        )

    def submit(self, request: dict, deadline_ms: float | None = None) -> Future:
        """Enqueue one compile request mapping; returns a future
        resolving to the service-shaped
        :class:`~repro.api.CompilationResult`.

        Raises :class:`ValueError` immediately on a malformed request
        (unknown keys/machine/scheduler/strategy, unparsable loop) —
        bad requests never reach the batch — :class:`ServiceClosed`
        after :meth:`close`, :class:`ServiceShuttingDown` while
        draining, and :class:`ServiceBusy` when the bounded queue
        (:attr:`max_queue` unique pending requests) is full.

        *deadline_ms* bounds queue wait: a request still queued when
        its deadline expires fails with :class:`ServiceTimeout` instead
        of occupying a batch slot.
        """
        key = self.request_key(request)  # validates; may raise
        started = time.perf_counter()
        deadline = (
            time.monotonic() + deadline_ms / 1000.0
            if deadline_ms is not None and deadline_ms > 0
            else None
        )
        with self._lock:
            if self._closed:
                raise ServiceClosed("compile service is shut down")
            if self._draining:
                raise ServiceShuttingDown(
                    "compile service is draining for shutdown"
                )
            self.requests_total += 1
            self.metrics.count("requests")
            entry = self._inflight.get(key)
            if entry is not None:
                self.coalesced_total += 1
                self.metrics.count("coalesced")
                # the joiner's own trace still shows where its request
                # went: a zero-duration marker pointing at the shared
                # computation
                if trace_context.current() is not None:
                    trace_context.record_span(
                        "service.coalesce", "service", 0.0,
                        attrs={"joined": entry.trace.trace_id
                               if entry.trace is not None else None},
                    )
                # a coalesced joiner must never shorten the shared
                # computation's life: keep the most permissive deadline
                if entry.deadline is not None and (
                    deadline is None or deadline > entry.deadline
                ):
                    entry.deadline = deadline
            else:
                if len(self._queue) >= self.max_queue:
                    self.shed_total += 1
                    self.metrics.count("shed")
                    raise ServiceBusy(
                        f"compile queue full ({self.max_queue} pending); "
                        "request shed"
                    )
                entry = _Inflight(dict(request), deadline=deadline)
                self._inflight[key] = entry
                self._queue.append(key)
                self._lock.notify_all()
        # every submitter observes its own queue-to-result latency,
        # coalesced or not — that is what a client experienced
        entry.future.add_done_callback(
            lambda _future, _started=started: self.metrics.observe(
                "request", time.perf_counter() - _started
            )
        )
        return entry.future

    def compile(
        self,
        request: dict,
        timeout: float | None = None,
        deadline_ms: float | None = None,
    ):
        """:meth:`submit` and wait: one service-shaped result.

        With *deadline_ms* the wait itself is bounded too, and a missed
        deadline surfaces as :class:`ServiceTimeout`."""
        future = self.submit(request, deadline_ms=deadline_ms)
        if deadline_ms is not None and deadline_ms > 0:
            wait = deadline_ms / 1000.0
            timeout = wait if timeout is None else min(timeout, wait)
        try:
            return future.result(timeout=timeout)
        except TimeoutError as error:
            if isinstance(error, ServiceTimeout) or deadline_ms is None:
                raise
            self._count_timeout()
            raise ServiceTimeout(
                f"deadline of {deadline_ms:g} ms exceeded waiting for result"
            ) from None

    def compile_many(
        self,
        requests,
        timeout: float | None = None,
        deadline_ms: float | None = None,
    ) -> list:
        """Submit a client batch and wait; results in request order.
        Duplicates inside the batch coalesce onto one computation."""
        futures = [
            self.submit(request, deadline_ms=deadline_ms)
            for request in requests
        ]
        if deadline_ms is not None and deadline_ms > 0:
            wait = deadline_ms / 1000.0
            timeout = wait if timeout is None else min(timeout, wait)
        results = []
        for future in futures:
            try:
                results.append(future.result(timeout=timeout))
            except TimeoutError as error:
                if isinstance(error, ServiceTimeout) or deadline_ms is None:
                    raise
                self._count_timeout()
                raise ServiceTimeout(
                    f"deadline of {deadline_ms:g} ms exceeded waiting "
                    "for batch results"
                ) from None
        return results

    def _count_timeout(self) -> None:
        with self._lock:
            self.timeouts_total += 1
        self.metrics.count("timeouts")

    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._lock.wait()
                if not self._queue and self._closed:
                    return
            # one short window for concurrent clients to join the batch
            if self.batch_window > 0:
                time.sleep(self.batch_window)
            expired: list[tuple] = []
            with self._lock:
                keys = [
                    self._queue.popleft()
                    for _ in range(min(len(self._queue), self.max_batch))
                ]
                now = time.monotonic()
                batch = []
                for key in keys:
                    entry = self._inflight[key]
                    if entry.deadline is not None and now > entry.deadline:
                        self._inflight.pop(key, None)
                        self.timeouts_total += 1
                        expired.append((key, entry))
                    else:
                        batch.append((key, entry))
            for _, entry in expired:
                self.metrics.count("timeouts")
                entry.future.set_exception(
                    ServiceTimeout(
                        "deadline exceeded before compilation started"
                    )
                )
            if batch:
                self._run_batch(batch)
            self._flush_spans(collect_workers=False)
            self.metrics.maybe_flush()

    def _run_batch(self, batch: list[tuple]) -> None:
        started = time.perf_counter()
        requests = []
        for _, entry in batch:
            if entry.trace is not None:
                self._traced_seen = True
                # queue wait: enqueue to batch dispatch
                trace_context.record_span(
                    "service.queue", "service",
                    (started - entry.enqueued) * 1000.0,
                    context=entry.trace.child(),
                )
                # hand the context to the (possibly pooled) compile
                request = dict(entry.request)
                request["trace"] = entry.trace.to_wire()
                requests.append(request)
            else:
                requests.append(entry.request)
        cache_before = STATS.snapshot()
        try:
            results = self.pipeline.compile_many(requests, jobs=self.jobs)
        except BaseException as error:  # pool death, store I/O, bugs
            with self._lock:
                self.errors_total += len(batch)
                for key, entry in batch:
                    self._inflight.pop(key, None)
            self.metrics.count("errors", len(batch))
            for _, entry in batch:
                entry.future.set_exception(error)
            return
        with self._lock:
            self.batches_total += 1
            self.compiled_total += len(batch)
            for key, _ in batch:
                self._inflight.pop(key, None)
        elapsed = time.perf_counter() - started
        for _, entry in batch:
            if entry.trace is not None:
                trace_context.record_span(
                    "service.batch", "service", elapsed * 1000.0,
                    context=entry.trace.child(),
                    attrs={"batch": len(batch)},
                )
        self.metrics.observe("batch", elapsed)
        self.metrics.count("batches")
        self.metrics.count("batch_requests", len(batch))
        self._record_cache_movement(STATS.delta(cache_before))
        for (_, entry), result in zip(batch, results):
            entry.future.set_result(result)

    def _record_cache_movement(self, delta: CacheStats) -> None:
        """One batch's parent-process CacheStats movement, as
        time-series counters (``cache_schedule_hits``-style names)."""
        self.metrics.count_many({
            f"cache_{name}": value
            for name, value in delta.as_dict().items()
        })

    def _flush_spans(self, collect_workers: bool) -> None:
        """Move finished trace spans into the metrics recorder.

        The local buffer drain is one lock acquisition — cheap enough
        for every dispatch-loop pass.  *collect_workers* additionally
        probes the pool workers' buffers (drain/close/stats only, and
        only when tracing was ever in play — the probe submits pool
        tasks)."""
        spans = trace_context.drain_spans()
        if (
            collect_workers
            and self.jobs > 1
            and (self._traced_seen or trace_context.tracing_enabled())
        ):
            try:
                spans.extend(worker_pool_mod.drain_worker_spans())
            except Exception:
                pass  # a broken pool must not break shutdown/stats
        if spans:
            self.metrics.record_spans(spans)

    # ------------------------------------------------------------------
    # routed experiment-engine cells (``repro sweep --connect``)
    def evaluate_cells(self, cell_documents: list) -> tuple[list, dict]:
        """Evaluate a batch of experiment-engine cells (wire mappings —
        see :func:`repro.eval.engine.cell_to_wire`) against this
        daemon's warm store/memos.

        Returns ``(results, cache)``: one deterministic cell-data dict
        per input cell, **in input order**, plus the batch's
        parent-process CacheStats movement.  The data dicts are exactly
        what a local :func:`repro.eval.engine.evaluate_cell` produces,
        so a sweep routed through a cluster is byte-identical to a
        local one.  One cell batch runs at a time (cell evaluation
        shares the process-wide memos).
        """
        from repro.eval.engine import (
            cell_from_wire,
            routed_through,
            run_cells,
        )

        cells = [cell_from_wire(document) for document in cell_documents]
        with self._lock:
            if self._closed:
                raise ServiceClosed("compile service is shut down")
            self.cells_total += len(cells)
            self.cell_batches_total += 1
            self.metrics.count("cells", len(cells))
            self.metrics.count("cell_batches")
        started = time.perf_counter()
        context = (
            sched_store.using(self.pipeline.cache)
            if self.pipeline.cache is not None
            else contextlib.nullcontext()
        )
        # routed_through(None): this is the shard end of the routing —
        # cells must evaluate HERE even when this process also holds a
        # ClusterClient context (in-process daemons in tests)
        with self._cells_lock, context, routed_through(None):
            cache_before = STATS.snapshot()
            run = run_cells(cells, jobs=self.jobs)
            delta = STATS.delta(cache_before)
        if trace_context.current() is not None:
            trace_context.record_span(
                "service.cells", "service",
                (time.perf_counter() - started) * 1000.0,
                attrs={"cells": len(cells)},
            )
        self.metrics.observe("cells_batch", time.perf_counter() - started)
        self._record_cache_movement(delta)
        by_cell = {result.cell: result.data for result in run.results}
        return [by_cell[cell] for cell in cells], delta.as_dict()

    # ------------------------------------------------------------------
    # telemetry
    def healthz(self) -> dict:
        """Liveness document for ``/healthz`` (volatile fields are fine
        here — health is operational, never byte-compared)."""
        with self._lock:
            queued = len(self._queue)
            inflight = len(self._inflight)
        if self._closed:
            status = "closed"
        elif self._draining:
            status = "draining"
        else:
            status = "ok"
        return {
            "schema": HEALTH_SCHEMA,
            "status": status,
            "uptime_seconds": time.time() - self.started_at,
            "jobs": self.jobs,
            "queued": queued,
            "inflight": inflight,
        }

    def stats(self) -> dict:
        """The ``/stats`` document: service counters, cache/work counter
        movement since the service started (parent process **and** the
        aggregated pool workers), store/pool telemetry and the metrics
        digest."""
        store = self.pipeline.cache
        if store is None:
            store = sched_store.active_store()
        with self._lock:
            counters = {
                "requests": self.requests_total,
                "coalesced": self.coalesced_total,
                "batches": self.batches_total,
                "compiled": self.compiled_total,
                "errors": self.errors_total,
                "cells": self.cells_total,
                "cell_batches": self.cell_batches_total,
                "shed": self.shed_total,
                "timeouts": self.timeouts_total,
                "max_queue": self.max_queue,
                "queued": len(self._queue),
                "inflight": len(self._inflight),
            }
        workers = self._aggregate_workers()
        cache = STATS.delta(self._cache_base).as_dict()
        cache_total = dict(cache)
        for name, value in workers["cache"].items():
            cache_total[name] = cache_total.get(name, 0) + value
        self._flush_spans(collect_workers=True)
        self.metrics.maybe_flush()
        return {
            "schema": STATS_SCHEMA,
            "uptime_seconds": time.time() - self.started_at,
            "jobs": self.jobs,
            "service": counters,
            "cache": cache,
            "workers": workers,
            "cache_total": cache_total,
            "work": WORK.delta(self._work_base).as_dict(),
            "store": store.stats() if store is not None else None,
            "pool": worker_pool_mod.pool_stats(),
            "metrics": self.metrics.summary(),
        }

    def prometheus(self) -> str:
        """The ``/metrics`` exposition document (text format 0.0.4):
        the recorder's lifetime counters and latency histograms plus a
        few instantaneous service gauges."""
        with self._lock:
            gauges = {
                "queued": float(len(self._queue)),
                "inflight": float(len(self._inflight)),
                "jobs": float(self.jobs),
            }
        gauges["uptime_seconds"] = time.time() - self.started_at
        return render_prometheus(
            self.metrics.counter_snapshot(),
            gauges,
            self.metrics.histogram_snapshot(),
        )

    def _aggregate_workers(self) -> dict:
        """The pool workers' summed cache/work counters (only probed
        when this service actually fans out, i.e. ``jobs > 1``).  The
        movement since the last probe is also fed into the metrics
        recorder (``worker_cache_*`` time series), so warm-pool hits
        reach the persistent layer too."""
        if self.jobs <= 1:
            return {"processes": 0, "cache": {}, "work": {}}
        workers = worker_pool_mod.worker_stats()
        movement = {}
        for name, value in workers["cache"].items():
            delta = value - self._worker_counters_last.get(name, 0)
            if delta > 0:
                movement[f"worker_cache_{name}"] = delta
            self._worker_counters_last[name] = value
        self.metrics.count_many(movement)
        return workers
