"""The transport-agnostic compilation service core.

:class:`CompileService` is what every transport (stdio, socket, HTTP —
see :mod:`repro.server.daemon`) hands requests to.  It owns exactly one
:class:`repro.api.Pipeline` — and therefore one warm persistent worker
pool and one shared :class:`repro.sched.store.ScheduleStore` — for the
whole daemon lifetime, and turns many concurrent single-request clients
into the batch shape the pipeline is fastest at:

* **Request queue + batching.**  ``submit()`` enqueues and returns a
  future; a dispatcher thread drains the queue, waits one short batch
  window for stragglers, and runs the whole group through
  :meth:`Pipeline.compile_many` — so eight clients arriving together
  cost one batch, not eight independent compiles.
* **In-flight coalescing.**  Requests are keyed by the same material the
  memo/store layers use (:func:`repro.sched.cache.compile_request_key`:
  DDG fingerprint, machine, scheduler, strategy, budget, options — plus
  the loop name, which is part of the response document).  A request
  whose key is already queued or executing does not enqueue again: it
  receives the in-flight computation's future, so identical concurrent
  requests schedule exactly once.
* **Determinism.**  Results are the pipeline's service shape (volatile
  fields — ``wall_seconds`` and the cache-warmth-dependent work
  counters — zeroed, heavyweight artifacts stripped), so a served
  response is byte-identical to a direct in-process
  ``Pipeline.compile_many`` result, whatever the batching or coalescing
  did.
* **Telemetry.**  :meth:`stats` reports service counters (requests,
  batches, coalesced, errors), the :class:`repro.sched.cache.CacheStats`
  movement and the PR-4 :data:`repro.graph.index.WORK` counters for the
  server lifetime, store telemetry, and the worker-pool state — the
  ``/stats`` endpoint.  Note the cache/work counters are *parent
  process* counters: with ``jobs > 1`` the schedule computations happen
  in pool workers, so run the daemon with ``jobs=1`` (the default) when
  the counters themselves are what you are after.
"""

from __future__ import annotations

import contextlib
import threading
import time
from collections import deque
from concurrent.futures import Future

from repro import pool as worker_pool_mod
from repro.api import Pipeline
from repro.graph.index import WORK
from repro.sched import store as sched_store
from repro.sched.cache import STATS, compile_request_key

STATS_SCHEMA = "repro.server-stats/1"
HEALTH_SCHEMA = "repro.server-health/1"


class ServiceClosed(RuntimeError):
    """Raised by :meth:`CompileService.submit` after :meth:`close`."""


class _Inflight:
    """One queued-or-executing unique request and its shared future."""

    __slots__ = ("future", "request")

    def __init__(self, request: dict) -> None:
        self.future: Future = Future()
        self.request = request


class CompileService:
    """One warm pipeline behind a batching, coalescing request queue.

    Arguments:
        pipeline: the :class:`~repro.api.Pipeline` to serve (its
            defaults fill omitted request fields).  Built from *cache*
            with stock defaults when not given.
        cache: persistent store directory (or
            :class:`~repro.sched.store.ScheduleStore`) when *pipeline*
            is not given.
        jobs: pool width for each batch (``1`` = compile in the
            dispatcher thread; memos still make repeats free).
        batch_window: seconds the dispatcher waits after the first
            queued request for more to arrive before compiling.
        max_batch: largest group handed to one ``compile_many`` call.
        start: start the dispatcher thread immediately.  Tests pass
            ``False`` to stage several duplicate submissions and then
            :meth:`start` the dispatcher, making coalescing assertions
            deterministic.
    """

    def __init__(
        self,
        pipeline: Pipeline | None = None,
        cache: "sched_store.ScheduleStore | str | None" = None,
        jobs: int = 1,
        batch_window: float = 0.002,
        max_batch: int = 64,
        start: bool = True,
    ) -> None:
        self.pipeline = pipeline if pipeline is not None else Pipeline(cache=cache)
        self.jobs = max(1, int(jobs))
        self.batch_window = batch_window
        self.max_batch = max(1, int(max_batch))
        self.started_at = time.time()
        self._lock = threading.Condition()
        # pipeline state (the parsed-DDG cache and its eviction) is not
        # thread-safe; every transport thread parses under this lock
        self._parse_lock = threading.Lock()
        self._queue: deque[tuple] = deque()
        self._inflight: dict[tuple, _Inflight] = {}
        self._closed = False
        self._dispatcher: threading.Thread | None = None
        # lifetime baselines: /stats reports movement since construction
        self._cache_base = STATS.snapshot()
        self._work_base = WORK.snapshot()
        self.requests_total = 0
        self.coalesced_total = 0
        self.batches_total = 0
        self.compiled_total = 0
        self.errors_total = 0
        if self.jobs > 1:
            # warm the shared pool under this pipeline's store so the
            # first batch pays no worker spin-up
            context = (
                sched_store.using(self.pipeline.cache)
                if self.pipeline.cache is not None
                else contextlib.nullcontext()
            )
            with context:
                worker_pool_mod.warm_pool(self.jobs)
        if start:
            self.start()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the dispatcher thread (idempotent)."""
        with self._lock:
            if self._dispatcher is not None or self._closed:
                return
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop,
                name="repro-server-dispatch",
                daemon=True,
            )
            self._dispatcher.start()

    def close(self) -> None:
        """Stop accepting work, finish the queue, stop the dispatcher.
        The worker pool is left alive (it is process-wide and shared)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._lock.notify_all()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=30)

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def request_key(self, request: dict) -> tuple:
        """The coalescing identity of *request*: the memo/store key
        material plus the loop name (equal keys ⇒ byte-identical
        response documents)."""
        with self._parse_lock:
            normalized = self.pipeline.normalize_request(request)
            ddg = self.pipeline.ddg(normalized["loop"], normalized["name"])
        return (
            normalized["name"],
            *compile_request_key(
                ddg,
                normalized["machine"],
                normalized["scheduler"],
                normalized["strategy"],
                normalized["registers"],
                normalized["options"],
            ),
        )

    def submit(self, request: dict) -> Future:
        """Enqueue one compile request mapping; returns a future
        resolving to the service-shaped
        :class:`~repro.api.CompilationResult`.

        Raises :class:`ValueError` immediately on a malformed request
        (unknown keys/machine/scheduler/strategy, unparsable loop) —
        bad requests never reach the batch — and :class:`ServiceClosed`
        after :meth:`close`.
        """
        key = self.request_key(request)  # validates; may raise
        with self._lock:
            if self._closed:
                raise ServiceClosed("compile service is shut down")
            self.requests_total += 1
            entry = self._inflight.get(key)
            if entry is not None:
                self.coalesced_total += 1
                return entry.future
            entry = _Inflight(dict(request))
            self._inflight[key] = entry
            self._queue.append(key)
            self._lock.notify_all()
            return entry.future

    def compile(self, request: dict, timeout: float | None = None):
        """:meth:`submit` and wait: one service-shaped result."""
        return self.submit(request).result(timeout=timeout)

    def compile_many(self, requests, timeout: float | None = None) -> list:
        """Submit a client batch and wait; results in request order.
        Duplicates inside the batch coalesce onto one computation."""
        futures = [self.submit(request) for request in requests]
        return [future.result(timeout=timeout) for future in futures]

    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._lock.wait()
                if not self._queue and self._closed:
                    return
            # one short window for concurrent clients to join the batch
            if self.batch_window > 0:
                time.sleep(self.batch_window)
            with self._lock:
                keys = [
                    self._queue.popleft()
                    for _ in range(min(len(self._queue), self.max_batch))
                ]
                batch = [(key, self._inflight[key]) for key in keys]
            if batch:
                self._run_batch(batch)

    def _run_batch(self, batch: list[tuple]) -> None:
        requests = [entry.request for _, entry in batch]
        try:
            results = self.pipeline.compile_many(requests, jobs=self.jobs)
        except BaseException as error:  # pool death, store I/O, bugs
            with self._lock:
                self.errors_total += len(batch)
                for key, entry in batch:
                    self._inflight.pop(key, None)
            for _, entry in batch:
                entry.future.set_exception(error)
            return
        with self._lock:
            self.batches_total += 1
            self.compiled_total += len(batch)
            for key, _ in batch:
                self._inflight.pop(key, None)
        for (_, entry), result in zip(batch, results):
            entry.future.set_result(result)

    # ------------------------------------------------------------------
    # telemetry
    def healthz(self) -> dict:
        """Liveness document for ``/healthz`` (volatile fields are fine
        here — health is operational, never byte-compared)."""
        with self._lock:
            queued = len(self._queue)
            inflight = len(self._inflight)
        return {
            "schema": HEALTH_SCHEMA,
            "status": "closed" if self._closed else "ok",
            "uptime_seconds": time.time() - self.started_at,
            "jobs": self.jobs,
            "queued": queued,
            "inflight": inflight,
        }

    def stats(self) -> dict:
        """The ``/stats`` document: service counters, cache/work counter
        movement since the service started, store and pool telemetry."""
        store = self.pipeline.cache
        if store is None:
            store = sched_store.active_store()
        with self._lock:
            counters = {
                "requests": self.requests_total,
                "coalesced": self.coalesced_total,
                "batches": self.batches_total,
                "compiled": self.compiled_total,
                "errors": self.errors_total,
                "queued": len(self._queue),
                "inflight": len(self._inflight),
            }
        return {
            "schema": STATS_SCHEMA,
            "uptime_seconds": time.time() - self.started_at,
            "jobs": self.jobs,
            "service": counters,
            "cache": STATS.delta(self._cache_base).as_dict(),
            "work": WORK.delta(self._work_base).as_dict(),
            "store": store.stats() if store is not None else None,
            "pool": worker_pool_mod.pool_stats(),
        }
