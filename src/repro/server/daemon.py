"""Daemon transports: stdio, unix-socket, TCP and HTTP front ends.

All four speak to one shared :class:`repro.server.service.CompileService`
— one warm pool, one store, one coalescing queue — and differ only in
framing:

* **stdio** — the line protocol of :mod:`repro.server.protocol` on
  stdin/stdout (the default for ``repro serve``; embed the daemon as a
  subprocess and pipe requests);
* **unix socket** (``repro serve --socket PATH``) — the same line
  protocol, many concurrent connections, one handler thread each;
* **TCP** (``repro serve --tcp [HOST:]PORT``) — the same line protocol
  on an INET socket: the cluster transport.  Combine with ``--token``
  (or ``$REPRO_TOKEN``) so every request line must carry the shared
  token — unauthenticated lines are rejected at the protocol layer
  with a constant-time comparison;
* **HTTP** (``repro serve --http PORT``) — a minimal standard-library
  endpoint: ``POST /compile`` and ``POST /compile_many`` take the same
  request mappings, ``POST /cells`` evaluates routed engine cells,
  ``GET /healthz`` and ``GET /stats`` expose the service telemetry,
  ``GET /metrics`` serves the Prometheus text exposition, ``POST
  /shutdown`` stops the daemon.  With a token configured, every
  endpoint except ``GET /healthz`` (liveness probes stay cheap and
  credential-free) requires ``Authorization: Bearer <token>``.
  Compile requests may carry a propagated trace context in an
  ``X-Repro-Trace`` header (the JSON of
  :meth:`repro.trace.TraceContext.to_wire`); the line protocol's
  equivalent is the ``"trace"`` envelope field.

:func:`serve` wires any combination to one service, prints one
``listening on ...`` line per transport to stderr (stdout belongs to
the stdio protocol), and runs until EOF/SIGTERM/SIGINT or a
``shutdown`` request.  Responses are byte-identical across transports:
they all serialize the same ``repro.compile/1`` documents with sorted
keys.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import socketserver
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.faults import plan as faults
from repro.server import protocol
from repro.server.service import CompileService
from repro.trace import context as trace_context


# ----------------------------------------------------------------------
# line-protocol stream transports (unix socket + TCP)
class _LineHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # one connection, many lines
        for line in self.rfile:
            if not line.strip():
                continue
            # the shutdown op is acknowledged first, acted on after the
            # ack is flushed — the client must never lose the response
            # to daemon teardown
            pending_shutdown = []
            response = protocol.handle_line(
                self.server.service, line,
                shutdown=lambda: pending_shutdown.append(True),
                token=self.server.token,
            )
            encoded = protocol.encode(response)
            if faults.enabled():
                if faults.fire("server.drop_connection") is not None:
                    return  # simulate a server dying before responding
                rule = faults.fire("server.slow_response")
                if rule is not None:
                    time.sleep(rule.ms / 1000.0)
                if faults.fire("server.truncate_response") is not None:
                    with contextlib.suppress(OSError):
                        self.wfile.write(encoded[: max(1, len(encoded) // 2)])
                        self.wfile.flush()
                    return  # half a line, then EOF — a torn response
            try:
                self.wfile.write(encoded)
                self.wfile.flush()
            except OSError:
                return  # client went away mid-response
            if pending_shutdown:
                self.server.stop_daemon()
                return


class LineSocketServer(socketserver.ThreadingUnixStreamServer):
    """The line protocol on a unix domain socket (one thread per
    connection; all threads feed the one shared service queue)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, path: str, service: CompileService, stop=None,
                 token: "str | None" = None):
        self.service = service
        self._stop = stop
        self.token = token
        self.path = path
        with contextlib.suppress(OSError):
            os.unlink(path)  # a stale socket from a dead daemon
        super().__init__(path, _LineHandler)

    def stop_daemon(self) -> None:
        if self._stop is not None:
            self._stop()

    def server_close(self) -> None:
        super().server_close()
        with contextlib.suppress(OSError):
            os.unlink(self.path)


class LineTCPServer(socketserver.ThreadingTCPServer):
    """The line protocol on a TCP socket — the cluster transport.

    Identical framing and semantics to :class:`LineSocketServer`; the
    only differences are the address family and that a shared *token*
    is the expected deployment (the socket is reachable beyond the
    local filesystem's permission checks).  Pass ``port=0`` to bind an
    ephemeral port and read it back from :attr:`port`.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, host: str, port: int, service: CompileService,
                 stop=None, token: "str | None" = None):
        self.service = service
        self._stop = stop
        self.token = token
        super().__init__((host, port), _LineHandler)

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    def stop_daemon(self) -> None:
        if self._stop is not None:
            self._stop()


# ----------------------------------------------------------------------
# HTTP transport
class _HTTPHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # stderr, never stdout
        sys.stderr.write(
            f"repro serve: {self.address_string()} {format % args}\n"
        )

    def _send(self, status: int, document: dict) -> None:
        body = protocol.encode(document)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self):
        length = int(self.headers.get("Content-Length") or 0)
        return json.loads(self.rfile.read(length) or b"null")

    def _authorized(self) -> bool:
        """Bearer-token check; ``/healthz`` stays open so liveness
        probes never need credentials."""
        if self.path == "/healthz":
            return True
        header = self.headers.get("Authorization") or ""
        provided = (
            header[len("Bearer "):] if header.startswith("Bearer ") else None
        )
        if protocol.check_token(provided, self.server.token):
            return True
        self._send(401, {"error": protocol.UNAUTHORIZED})
        return False

    def do_GET(self) -> None:
        service = self.server.service
        if not self._authorized():
            return
        if self.path == "/healthz":
            self._send(200, service.healthz())
        elif self.path == "/stats":
            self._send(200, service.stats())
        elif self.path == "/metrics":
            body = service.prometheus().encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type",
                "text/plain; version=0.0.4; charset=utf-8",
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self._send(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:
        service = self.server.service
        if not self._authorized():
            return
        try:
            # per-request deadline rides in a header so the JSON body
            # stays exactly the compile-request mapping
            deadline_header = self.headers.get("X-Repro-Deadline-Ms")
            deadline_ms = None
            if deadline_header:
                try:
                    deadline_ms = float(deadline_header)
                except ValueError:
                    raise ValueError(
                        "X-Repro-Deadline-Ms must be a number"
                    ) from None
            # the optional propagated trace context (out-of-band, like
            # the deadline): absent or malformed → untraced nullcontext
            trace_header = self.headers.get("X-Repro-Trace")
            if self.path == "/compile":
                request = self._body()
                if not isinstance(request, dict):
                    raise ValueError("body must be one request mapping")
                with trace_context.server_scope(trace_header, "compile"):
                    result = service.compile(request, deadline_ms=deadline_ms)
                self._send(200, result.to_json())
            elif self.path == "/compile_many":
                requests = self._body()
                if not isinstance(requests, list):
                    raise ValueError("body must be a list of mappings")
                with trace_context.server_scope(
                    trace_header, "compile_many"
                ):
                    results = service.compile_many(
                        requests, deadline_ms=deadline_ms
                    )
                self._send(
                    200, {"results": [r.to_json() for r in results]}
                )
            elif self.path == "/cells":
                cells = self._body()
                if not isinstance(cells, list):
                    raise ValueError("body must be a list of cell mappings")
                with trace_context.server_scope(trace_header, "cells"):
                    results, cache = service.evaluate_cells(cells)
                self._send(200, {"results": results, "cache": cache})
            elif self.path == "/shutdown":
                self._send(200, {"shutdown": True})
                self.server.stop_daemon()
            else:
                self._send(404, {"error": f"unknown path {self.path!r}"})
        except (ValueError, json.JSONDecodeError) as error:
            self._send(400, {"error": str(error)})
        except Exception as error:  # compile failures must not kill HTTP
            kind = protocol.error_kind(error)
            if kind == "timeout":
                self._send(504, {"error": str(error), "kind": kind})
            elif kind is not None:  # busy / shutting_down
                self._send(503, {"error": str(error), "kind": kind})
            else:
                self._send(500, {"error": str(error)})


class CompileHTTPServer(ThreadingHTTPServer):
    """``POST /compile|/compile_many|/cells``, ``GET /healthz|/stats``."""

    daemon_threads = True

    def __init__(self, port: int, service: CompileService, stop=None,
                 host: str = "127.0.0.1", token: "str | None" = None):
        self.service = service
        self._stop = stop
        self.token = token
        super().__init__((host, port), _HTTPHandler)

    @property
    def port(self) -> int:
        return self.server_address[1]

    def stop_daemon(self) -> None:
        if self._stop is not None:
            self._stop()


# ----------------------------------------------------------------------
# stdio transport
def serve_stdio(service: CompileService, stdin=None, stdout=None,
                stop=None) -> None:
    """The line protocol on stdin/stdout; returns on EOF or after a
    ``shutdown`` op."""
    stdin = stdin if stdin is not None else sys.stdin.buffer
    stdout = stdout if stdout is not None else sys.stdout.buffer
    stopping = []

    def stop_daemon():
        stopping.append(True)
        if stop is not None:
            stop()

    for line in stdin:
        if not line.strip():
            continue
        response = protocol.handle_line(service, line, shutdown=stop_daemon)
        stdout.write(protocol.encode(response))
        stdout.flush()
        if stopping:
            return


def _interruptible_lines(stop_event: threading.Event):
    """Line iterator over the process's real stdin that polls
    *stop_event* between reads.

    The stdio transport runs in a daemon thread; a thread parked inside
    ``BufferedReader.readline`` holds the stream's lock and aborts the
    interpreter at finalization (``_enter_buffered_busy``).  Reading the
    raw fd through a selector means the thread is never blocked longer
    than one poll tick and exits promptly when the daemon stops.  Falls
    back to plain iteration when stdin has no selectable fd (tests pass
    in-memory streams).
    """
    import selectors

    stream = sys.stdin.buffer
    try:
        fd = stream.fileno()
        selector = selectors.DefaultSelector()
        selector.register(fd, selectors.EVENT_READ)
    except (AttributeError, OSError, ValueError):
        yield from stream
        return
    buffered = b""
    try:
        while not stop_event.is_set():
            if not selector.select(timeout=0.2):
                continue
            chunk = os.read(fd, 65536)
            if not chunk:
                return  # EOF
            buffered += chunk
            while b"\n" in buffered:
                line, buffered = buffered.split(b"\n", 1)
                yield line + b"\n"
    finally:
        selector.close()


# ----------------------------------------------------------------------
def parse_tcp_address(value) -> tuple[str, int]:
    """``"[HOST:]PORT"`` (or a bare int, or a ``(host, port)`` pair) →
    ``(host, port)``; the host defaults to ``127.0.0.1``."""
    if isinstance(value, tuple):
        host, port = value
        return str(host), int(port)
    if isinstance(value, int):
        return "127.0.0.1", value
    text = str(value)
    if ":" in text:
        host, _, port_text = text.rpartition(":")
        return host or "127.0.0.1", int(port_text)
    return "127.0.0.1", int(text)


def serve(
    service: CompileService,
    http_port: int | None = None,
    socket_path: str | None = None,
    stdio: bool = False,
    tcp=None,
    token: str | None = None,
    log=None,
    drain_timeout: float = 30.0,
) -> int:
    """Run the daemon until EOF (stdio), SIGTERM/SIGINT, or a
    ``shutdown`` request on any transport.  Starts whatever transports
    are requested; with none requested, stdio is implied.  *tcp* is a
    ``"[HOST:]PORT"`` string / port / ``(host, port)`` pair; *token*
    makes the socket, TCP and HTTP transports demand the shared token
    on every request (stdio is exempt — it is the operator's own
    pipe).  Returns the process exit code (0 on a clean shutdown).

    Shutdown is a graceful drain: on SIGTERM/SIGINT the service first
    stops accepting new requests (they get a typed ``shutting_down``
    error), already-accepted work is finished and its responses are
    flushed (bounded by *drain_timeout* seconds), and only then are the
    transports torn down."""
    log = log if log is not None else (
        lambda message: print(message, file=sys.stderr, flush=True)
    )
    if http_port is None and socket_path is None and tcp is None:
        stdio = True
    if tcp is not None and token is None:
        log("repro serve: warning: TCP transport without --token — "
            "any process that can reach the port can submit work")
    stop_event = threading.Event()
    servers = []
    threads = []
    # handlers go in before any transport is announced: an operator (or
    # CI) may signal the moment a "listening on" line appears
    previous = {}
    def _signal(signum, frame):
        stop_event.set()
    for signum in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(ValueError):  # non-main thread
            previous[signum] = signal.signal(signum, _signal)
    try:
        if http_port is not None:
            http_server = CompileHTTPServer(
                http_port, service, stop=stop_event.set, token=token
            )
            servers.append(http_server)
            threads.append(threading.Thread(
                target=http_server.serve_forever, daemon=True,
                name="repro-serve-http",
            ))
            log(f"repro serve: listening on http://127.0.0.1:"
                f"{http_server.port}")
        if socket_path is not None:
            line_server = LineSocketServer(
                socket_path, service, stop=stop_event.set, token=token
            )
            servers.append(line_server)
            threads.append(threading.Thread(
                target=line_server.serve_forever, daemon=True,
                name="repro-serve-socket",
            ))
            log(f"repro serve: listening on socket {socket_path}")
        if tcp is not None:
            host, port = parse_tcp_address(tcp)
            tcp_server = LineTCPServer(
                host, port, service, stop=stop_event.set, token=token
            )
            servers.append(tcp_server)
            threads.append(threading.Thread(
                target=tcp_server.serve_forever, daemon=True,
                name="repro-serve-tcp",
            ))
            log(f"repro serve: listening on tcp://{tcp_server.host}:"
                f"{tcp_server.port}")
        if stdio:
            # stdio runs in its own thread like every other transport,
            # so the main thread always waits on stop_event — a signal
            # or a shutdown request on *any* transport stops the daemon
            # even while stdin is blocked on a read
            def stdio_loop():
                try:
                    serve_stdio(
                        service, stdin=_interruptible_lines(stop_event)
                    )
                finally:
                    stop_event.set()  # EOF (or shutdown op) stops cleanly
            threads.append(threading.Thread(
                target=stdio_loop, daemon=True, name="repro-serve-stdio",
            ))
            log("repro serve: line protocol on stdio")
        for thread in threads:
            thread.start()
        try:
            # poll rather than wait(): a signal handler that sets the
            # event is then guaranteed to be noticed on the next tick,
            # whatever the platform does to interrupted lock waits
            while not stop_event.wait(timeout=0.5):
                pass
        except KeyboardInterrupt:
            stop_event.set()
    finally:
        for signum, handler in previous.items():
            with contextlib.suppress(ValueError):
                signal.signal(signum, handler)
        # graceful drain: reject new submissions, let in-flight batches
        # finish and their handler threads flush responses, then tear
        # the transports down
        service.drain()
        if not service.wait_idle(timeout=drain_timeout):
            log("repro serve: drain timed out; dropping remaining work")
        for server in servers:
            server.shutdown()
            server.server_close()
        for thread in threads:
            thread.join(timeout=5)
        service.close()
        log("repro serve: shut down cleanly")
    return 0
