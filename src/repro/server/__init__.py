"""The long-lived compilation service (``repro serve``).

A daemon that keeps one warm :class:`repro.api.Pipeline` — shared
worker pool, shared persistent :mod:`repro.sched.store`, warm in-memory
memos — across many clients, so a client invocation pays none of the
process-startup, pool-spin-up or store-open cost of a cold
``repro compile``.

Layers:

* :mod:`repro.server.service` — :class:`CompileService`: the request
  queue, batch dispatcher and in-flight request coalescing;
* :mod:`repro.server.protocol` — the line-delimited JSON wire protocol
  (schema ``repro.server/1``);
* :mod:`repro.server.daemon` — stdio/socket/TCP/HTTP transports and
  the :func:`serve` loop (TCP + ``--token`` is the sharded-cluster
  transport — see :mod:`repro.cluster`).

Clients connect through :mod:`repro.client` (``connect()``), or any
HTTP client against ``POST /compile``.  See ``docs/SERVER.md``.
"""

from repro.server.daemon import (
    CompileHTTPServer,
    LineSocketServer,
    LineTCPServer,
    parse_tcp_address,
    serve,
    serve_stdio,
)
from repro.server.protocol import (
    PROTOCOL_SCHEMA,
    UNAUTHORIZED,
    check_token,
    handle_line,
)
from repro.server.service import CompileService, ServiceClosed

__all__ = [
    "CompileHTTPServer",
    "CompileService",
    "LineSocketServer",
    "LineTCPServer",
    "PROTOCOL_SCHEMA",
    "ServiceClosed",
    "UNAUTHORIZED",
    "check_token",
    "handle_line",
    "parse_tcp_address",
    "serve",
    "serve_stdio",
]
