"""Command-line interface.

A thin shell over the unified compilation pipeline API
(:mod:`repro.api`): every subcommand resolves machines through
:mod:`repro.machine.specs`, schedulers through
:mod:`repro.sched.registry` and register-pressure strategies through
:mod:`repro.core.registry` — the CLI keeps no lookup tables of its own,
so registering a new scheduler or strategy makes it reachable from the
command line without touching this module.

Compile a loop written in the mini language into a register-constrained
software-pipelined schedule and inspect every intermediate artifact::

    python -m repro compile loop.l --machine P2L4 --registers 32
    python -m repro compile -e "x[i] = y[i]*a + y[i-3]" --show all
    python -m repro mii -e "s = s + x[i]*y[i]" --machine P1L4
    python -m repro suite --size 24 --registers 32
    python -m repro sweep --jobs 4 --json-out results.json

Subcommands:

* ``compile`` — run :func:`repro.api.compile_loop` under a register
  budget (``--method spill`` is Figure 1b, ``increase`` Figure 1a,
  ``combined`` the Section-5 proposal, ``prespill`` the [30] baseline,
  ``none`` the unconstrained schedule), with ``--json`` for the
  machine-readable :class:`~repro.api.CompilationResult`;
* ``mii`` — print ResMII / RecMII / MII for a loop;
* ``suite`` — summarize the evaluation suite under a budget;
* ``sweep`` — regenerate the paper's evaluation artifacts through the
  parallel cached experiment engine (one-command reproduction): suite ×
  machines × budgets × heuristic variants × ``--scheduler``, rendered
  tables on stdout and machine-readable JSON via ``--json-out``
  (deterministic for any ``--jobs`` value);
* ``fuzz`` — differential fuzzing: every iteration draws one random
  loop from a derived seed, compiles it through every scheduler ×
  strategy, and re-checks each result with the independent
  :mod:`repro.verify` oracle; failures are greedily shrunk and written
  as replayable reproducer documents (``--corpus DIR``, replayed with
  ``--replay PATH``); ``--self-check`` dry-runs the shrinker (CI gate);
* ``robust`` — perturbation robustness for one loop: N seeded
  compilations under latency/unit-count/dependence-distance jitter
  (:mod:`repro.robust`), reporting II degradation, schedule stability
  and oracle-pass statistics;
* ``cache`` — operator hygiene for a shared persistent store
  (``repro cache stats`` / ``clear`` / ``prune --max-bytes N``, with
  ``prune --dry-run`` to preview evictions) without writing any Python;
* ``serve`` — the long-lived compilation daemon
  (:mod:`repro.server`): one warm worker pool and one shared store
  across every client, request batching and in-flight coalescing, over
  stdio (default), ``--socket PATH``, ``--tcp [HOST:]PORT`` or
  ``--http PORT``, with ``--token`` shared-token authentication and a
  persistent :mod:`repro.metrics` database (``--metrics PATH``;
  defaults to ``metrics.sqlite`` inside ``--cache-dir``);
* ``compile --connect ADDR`` — hand the request to a running daemon
  (via :mod:`repro.client`) instead of compiling in-process;
* ``sweep --connect ADDR[,ADDR...]`` — route the whole experiment grid
  through a sharded daemon cluster (:mod:`repro.cluster`), one shard
  per consistent-hash key range, byte-identical JSON either way;
* ``cluster stats|top`` — per-shard + aggregated telemetry of a
  running cluster, and the persisted metrics time series (``cluster
  stats --prune-older-than DAYS`` prunes old rows offline);
* ``sweep --trace PATH`` / ``serve --trace`` — record end-to-end
  request traces (client, server, service, worker and per-phase
  spans) without changing any output byte;
* ``trace show|top|slow`` — inspect persisted traces: span trees,
  the aggregate phase profile, the slowest spans (``--json`` emits
  the ``repro.trace/1`` document).  See ``docs/OBSERVABILITY.md``.

``compile``, ``sweep`` and ``serve`` take ``--cache-dir DIR`` (default:
``$REPRO_CACHE_DIR``): a persistent :mod:`repro.sched.store` directory
shared by every worker process and every later run — a repeated sweep
into the same directory is served from disk (see ``docs/CACHING.md``) —
plus ``--max-bytes N`` to set the store's eviction cap.
"""

from __future__ import annotations

import argparse
import sys

from repro.api import compile_loop
from repro.codegen import (
    render_kernel,
    render_lifetimes,
    render_pressure,
    render_schedule,
)
from repro.core.registry import strategy_names, strategy_options
from repro.eval import format_table
from repro.graph import ddg_from_source
from repro.lifetimes import register_requirements
from repro.machine.specs import machine_names, resolve_machine
from repro.sched import compute_mii, rec_mii, reduce_stages, res_mii
from repro.sched.registry import create_scheduler, scheduler_names

_SHOW_CHOICES = ("graph", "schedule", "kernel", "lifetimes", "pressure", "all")


def _machine_from(args):
    try:
        return resolve_machine(args.machine)
    except ValueError as error:
        raise SystemExit(f"repro: {error}")


def _cache_from(args):
    """Resolve ``--cache-dir`` into a store up front, so a bad path (an
    existing file, an unwritable parent) is a clean CLI error instead of
    a traceback mid-run.  ``--max-bytes`` (where the subcommand takes
    it) overrides the store's eviction cap for the run."""
    from repro.sched import store as sched_store

    if args.cache_dir is None:
        return None
    try:
        store = sched_store.resolve_store(args.cache_dir)
    except OSError as error:
        raise SystemExit(
            f"repro: cannot use cache directory {args.cache_dir!r}:"
            f" {error}"
        )
    max_bytes = getattr(args, "max_bytes", None)
    if max_bytes is not None:
        if max_bytes <= 0:
            raise SystemExit("repro: --max-bytes must be positive")
        store.max_bytes = max_bytes
    return store


def _source_from(args) -> str:
    if args.expr:
        return args.expr
    if args.file == "-":
        return sys.stdin.read()
    with open(args.file) as handle:
        return handle.read()


def _add_loop_arguments(parser):
    parser.add_argument(
        "file", nargs="?", default="-",
        help="mini-language source file ('-' for stdin)",
    )
    parser.add_argument(
        "-e", "--expr", metavar="SOURCE",
        help="inline loop body instead of a file",
    )
    parser.add_argument(
        "--machine", default="P2L4",
        help=f"{', '.join(machine_names())} or generic:UNITS:LATENCY"
        " (default P2L4)",
    )


def _cmd_compile(args) -> int:
    options = {}
    # Strategies declare their accepted options in the registry, so the
    # --policy flag reaches every strategy that takes one (including
    # third-party registrations) without a name list here.
    if "policy" in strategy_options(args.method):
        options["policy"] = "max_lt" if args.policy == "lt" else "max_lt_traf"
    if args.connect:
        return _compile_connected(args, options)
    try:
        result = compile_loop(
            _source_from(args),
            machine=_machine_from(args),
            scheduler=args.scheduler,
            strategy=args.method,
            registers=args.registers,
            options=options,
            name=args.name,
            cache=_cache_from(args),
            verify=args.verify,
        )
    except ValueError as error:
        raise SystemExit(f"repro compile: {error}")
    except Exception as error:
        from repro.verify import VerificationError

        if isinstance(error, VerificationError):
            raise SystemExit(f"repro compile: {error}")
        raise

    if result.schedule is None:
        print(f"FAILED: {result.reason}")
        if args.json:
            print(result.to_json_text())
        return 1
    schedule = result.schedule
    print(result.render())
    if args.stage_pass:
        staged = reduce_stages(schedule)
        schedule = staged.schedule
        report = register_requirements(schedule)
        print(
            f"stage pass: SC={schedule.stage_count}"
            f" registers={report.total}"
            f" (saved {staged.registers_saved})"
        )
    if args.json:
        print(result.to_json_text())
    _show(args, schedule)
    return 0 if result.converged else 1


def _compile_connected(args, options: dict) -> int:
    """``repro compile --connect ADDR``: hand the request to a running
    ``repro serve`` daemon and print its (service-shaped) result."""
    from repro.client import ClientError, connect

    if args.show or args.stage_pass:
        raise SystemExit(
            "repro compile: --show/--stage-pass need the schedule"
            " artifact, which does not cross the wire; drop --connect"
        )
    if args.cache_dir is not None or args.max_bytes is not None:
        raise SystemExit(
            "repro compile: --cache-dir/--max-bytes configure the"
            " in-process store; the daemon owns its own cache"
            " (start it with 'repro serve --cache-dir ...')"
        )
    try:
        with connect(args.connect, fallback=False) as client:
            result = client.compile(
                _source_from(args),
                name=args.name,
                machine=args.machine,
                scheduler=args.scheduler,
                strategy=args.method,
                registers=args.registers,
                options=options,
            )
    except (OSError, ClientError, ValueError) as error:
        raise SystemExit(f"repro compile: --connect {args.connect}: {error}")
    if args.verify:
        # served results carry no artifacts, so the oracle recompiles
        # locally and cross-checks the daemon's scalars against it
        from repro.verify import verify_result

        oracle = verify_result(result, loop=_source_from(args))
        if not oracle.ok:
            print(oracle.render())
            return 1
    # mirror the local path: "FAILED" when no schedule exists at all
    # (ii is None), the render() verdict line otherwise
    if result.ii is None:
        print(f"FAILED: {result.reason}")
    else:
        print(result.render())
    if args.json:
        print(result.to_json_text())
    return 0 if result.converged else 1


def _show(args, schedule) -> None:
    wanted = set(args.show or [])
    if "all" in wanted:
        wanted = set(_SHOW_CHOICES) - {"all"}
    sections = [
        ("graph", lambda: str(schedule.ddg)),
        ("schedule", lambda: render_schedule(schedule)),
        ("kernel", lambda: render_kernel(schedule)),
        ("lifetimes", lambda: render_lifetimes(schedule)),
        ("pressure", lambda: render_pressure(schedule)),
    ]
    for name, renderer in sections:
        if name in wanted:
            print(f"\n--- {name} ---")
            print(renderer())


def _cmd_mii(args) -> int:
    machine = _machine_from(args)
    loop = ddg_from_source(_source_from(args), name=args.name)
    print(f"ResMII = {res_mii(loop, machine)}")
    print(f"RecMII = {rec_mii(loop, machine)}")
    print(f"MII    = {compute_mii(loop, machine)}")
    return 0


def _cmd_suite(args) -> int:
    from repro.workloads import perfect_club_like_suite

    machine = _machine_from(args)
    suite = perfect_club_like_suite(size=args.size)
    scheduler = create_scheduler(args.scheduler)
    rows = []
    needy = 0
    for workload in suite:
        schedule = scheduler.schedule(workload.ddg, machine)
        report = register_requirements(schedule)
        fits = report.fits(args.registers)
        needy += not fits
        rows.append([
            workload.name, len(workload.ddg), schedule.ii,
            report.total, "" if fits else "needs reduction",
        ])
    print(format_table(
        ["loop", "ops", "II", "registers", ""],
        rows,
        title=(
            f"suite of {len(suite)} loops on {machine.name}"
            f" / {args.registers} registers — {needy} need reduction"
        ),
    ))
    return 0


def _flush_sweep_trace(path: str) -> None:
    """Persist every span a traced sweep produced — pool-worker buffers
    first, then this process's own — into the ``--trace`` database."""
    from repro import pool
    from repro import trace as trace_mod
    from repro.metrics import MetricsDB

    spans = list(pool.drain_worker_spans())
    spans.extend(trace_mod.drain_spans())
    if not spans:
        return
    with MetricsDB(path) as db:
        db.record_spans(spans)
    print(f"[{len(spans)} trace span(s) written to {path}]")


def _cmd_sweep(args) -> int:
    from repro.eval.engine import run_sweep
    from repro.workloads import (
        RandomDDGParams,
        perfect_club_like_suite,
        random_suite,
    )

    try:
        machines = [resolve_machine(spec) for spec in args.machines]
        names = [
            part.strip() for part in args.scheduler.split(",") if part.strip()
        ]
        if not names:
            raise ValueError("--scheduler needs at least one name")
        schedulers = [create_scheduler(name) for name in names]
    except ValueError as error:
        raise SystemExit(f"repro sweep: {error}")
    scheduler = schedulers if len(schedulers) > 1 else schedulers[0]
    if args.suite == "club":
        suite = perfect_club_like_suite(size=args.size, seed=args.seed)
        suite_info = {"kind": "club", "seed": args.seed}
    else:
        params = RandomDDGParams(
            ops=args.ops,
            recurrence_density=args.recurrence_density,
            load_mix=args.load_mix,
            store_mix=args.store_mix,
        )
        try:
            params.validate()
        except ValueError as error:
            raise SystemExit(f"repro sweep: {error}")
        suite = random_suite(size=args.size, seed=args.seed, params=params)
        suite_info = {
            "kind": "random",
            "seed": args.seed,
            "ops": args.ops,
            "recurrence_density": args.recurrence_density,
            "load_mix": args.load_mix,
            "store_mix": args.store_mix,
        }
    if args.trace:
        import os

        from repro import trace as trace_mod

        # The env var (not just the in-process switch) so forked pool
        # workers inherit tracing; worker spans come back through the
        # pool's span-drain probes after the run.
        os.environ[trace_mod.ENV_VAR] = "1"
        trace_mod.enable(True)
    cluster = None
    if args.connect:
        if args.cache_dir is not None or args.max_bytes is not None:
            raise SystemExit(
                "repro sweep: --cache-dir/--max-bytes configure the"
                " in-process store; with --connect each shard daemon"
                " owns its own cache (start them with"
                " 'repro serve --cache-dir ...')"
            )
        from repro.cluster import ClusterClient

        try:
            cluster = ClusterClient(args.connect, token=args.token)
        except ValueError as error:
            raise SystemExit(f"repro sweep: --connect: {error}")
    try:
        report = run_sweep(
            suite=suite,
            machines=machines,
            budgets=tuple(args.budgets),
            artifacts=tuple(args.artifacts),
            jobs=args.jobs,
            scheduler=scheduler,
            suite_info=suite_info,
            cache_dir=None if cluster is not None else _cache_from(args),
            suite_filter=args.suite_filter,
            cluster=cluster,
            verify=args.verify,
        )
    except ValueError as error:
        raise SystemExit(f"repro sweep: {error}")
    except Exception as error:
        from repro.client import ClientError

        if cluster is not None and isinstance(error, (OSError, ClientError)):
            raise SystemExit(
                f"repro sweep: --connect {args.connect}: {error}"
            )
        raise
    finally:
        if cluster is not None:
            cluster.close()
        if args.trace:
            _flush_sweep_trace(args.trace)
    print(report.render())
    if args.json_out:
        with open(args.json_out, "w") as handle:
            handle.write(report.to_json_text())
            handle.write("\n")
        print(f"[json written to {args.json_out}]")
    return 0


def _cmd_fuzz(args) -> int:
    from repro.robust.fuzz import (
        FuzzConfig,
        replay_reproducer,
        run_fuzz,
        shrinker_self_check,
    )
    from repro.workloads import RandomDDGParams

    if args.replay:
        problems = replay_reproducer(args.replay)
        if problems:
            print(f"reproduces ({len(problems)} violation(s)):")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print("no longer reproduces")
        return 0
    if args.self_check:
        outcome = shrinker_self_check(args.seed)
        print(
            f"shrinker self-check: {outcome['start_ops']} ops ->"
            f" {outcome['shrunk_ops']} ops"
            f" ({outcome['shrunk_source']!r})"
        )
        if outcome["shrunk_ops"] > 8:
            print("FAILED: shrinker left more than 8 operations")
            return 1
        return 0
    params = RandomDDGParams(
        ops=args.ops,
        recurrence_density=args.recurrence_density,
        load_mix=args.load_mix,
        store_mix=args.store_mix,
    )
    try:
        params.validate()
        config = FuzzConfig(
            iterations=args.iterations,
            seed=args.seed,
            machines=tuple(args.machines),
            schedulers=tuple(args.schedulers),
            strategies=tuple(args.strategies),
            registers=tuple(args.registers),
            params=params,
            shrink=not args.no_shrink,
        )
        report = run_fuzz(config, corpus_dir=args.corpus, log=print)
    except ValueError as error:
        raise SystemExit(f"repro fuzz: {error}")
    print(report.render())
    if args.json_out:
        with open(args.json_out, "w") as handle:
            handle.write(report.to_json_text())
            handle.write("\n")
        print(f"[json written to {args.json_out}]")
    return 0 if report.ok else 1


def _cmd_robust(args) -> int:
    from repro.robust import PerturbSpec, run_robustness

    try:
        spec = PerturbSpec(
            latency=args.jitter_latency,
            units=args.jitter_units,
            distance=args.jitter_distance,
            rate=args.jitter_rate,
        )
        report = run_robustness(
            _source_from(args),
            machine=_machine_from(args),
            scheduler=args.scheduler,
            strategy=args.method,
            registers=args.registers,
            spec=spec,
            runs=args.runs,
            seed=args.seed,
            name=args.name,
        )
    except ValueError as error:
        raise SystemExit(f"repro robust: {error}")
    print(report.render())
    if args.json_out:
        with open(args.json_out, "w") as handle:
            handle.write(report.to_json_text())
            handle.write("\n")
        print(f"[json written to {args.json_out}]")
    return 0 if report.oracle_passes == len(report.rows) else 1


def _cmd_cache(args) -> int:
    from repro.sched import store as sched_store

    directory = args.cache_dir
    if directory is None:
        import os

        directory = os.environ.get(sched_store.ENV_CACHE_DIR)
    if not directory:
        raise SystemExit(
            "repro cache: no cache directory (pass --cache-dir or set"
            f" ${sched_store.ENV_CACHE_DIR})"
        )
    import pathlib

    if not pathlib.Path(directory).is_dir():
        # Resolving a store would silently mkdir the path — on a typo an
        # operator would "clear" a brand-new empty directory and walk
        # away thinking the real cache is gone.
        raise SystemExit(
            f"repro cache: {directory!r} is not an existing directory"
        )
    try:
        store = sched_store.resolve_store(directory)
    except OSError as error:
        raise SystemExit(
            f"repro: cannot use cache directory {directory!r}: {error}"
        )
    if args.cache_command == "stats":
        telemetry = store.stats()
        print(f"store: {telemetry['root']}")
        print(f"version: {telemetry['version']}")
        for namespace in sorted(telemetry["namespaces"]):
            block = telemetry["namespaces"][namespace]
            print(
                f"  {namespace:>10}: {block['entries']} entries,"
                f" {block['bytes']} bytes"
            )
        print(
            f"total: {telemetry['entries']} entries,"
            f" {telemetry['total_bytes']} bytes (cap {store.max_bytes})"
        )
        return 0
    if args.cache_command == "clear":
        removed = len(store.entries())
        store.clear()
        print(f"cleared {removed} entries from {store.root}")
        return 0
    if args.cache_command == "prune":
        max_bytes = args.max_bytes  # only the prune subparser has it
        if max_bytes is not None and max_bytes <= 0:
            raise SystemExit("repro cache: --max-bytes must be positive")
        before = store.total_bytes()
        cap = max_bytes if max_bytes is not None else store.max_bytes
        if args.dry_run:
            victims: list = []
            remaining = store.evict(max_bytes, dry_run=True, victims=victims)
            for path in victims:
                print(f"would delete {path.relative_to(store.root)}")
            print(
                f"dry run on {store.root}: {before} -> {remaining} bytes"
                f" (cap {cap}, {len(victims)} entries would go)"
            )
            return 0
        remaining = store.evict(max_bytes)
        print(
            f"pruned {store.root}: {before} -> {remaining} bytes"
            f" (cap {cap})"
        )
        return 0
    raise SystemExit(f"repro cache: unknown action {args.cache_command!r}")


def _cmd_serve(args) -> int:
    import os

    from repro.server import CompileService, serve

    if args.jobs < 1:
        raise SystemExit("repro serve: --jobs must be >= 1")
    if args.http is not None and not (0 <= args.http <= 65535):
        raise SystemExit("repro serve: --http PORT must be 0..65535")
    if args.tcp is not None:
        from repro.server.daemon import parse_tcp_address

        try:
            parse_tcp_address(args.tcp)
        except ValueError:
            raise SystemExit(
                f"repro serve: bad --tcp address {args.tcp!r}"
                " (expected [HOST:]PORT)"
            )
    token = args.token or os.environ.get("REPRO_TOKEN") or None
    if args.trace:
        from repro import trace as trace_mod

        # env var too, so pool workers forked by batches inherit it
        os.environ[trace_mod.ENV_VAR] = "1"
        trace_mod.enable(True)
    store = _cache_from(args)
    metrics = args.metrics
    if metrics is None and store is not None:
        # persistence rides along with the cache dir by default: one
        # operator-owned directory per shard holds both
        from repro.metrics import metrics_path

        metrics = str(metrics_path(store.root))
    service = CompileService(
        cache=store, jobs=args.jobs, metrics=metrics
    )
    return serve(
        service,
        http_port=args.http,
        socket_path=args.socket,
        stdio=args.stdio,
        tcp=args.tcp,
        token=token,
    )


def _cluster_client_from(args):
    from repro.cluster import ClusterClient

    if not args.connect:
        raise SystemExit(
            "repro cluster: --connect ADDR[,ADDR...] is required"
        )
    try:
        return ClusterClient(args.connect, token=args.token)
    except ValueError as error:
        raise SystemExit(f"repro cluster: {error}")


def _trace_db_paths(args) -> list[str]:
    """Resolve ``--metrics`` / ``--cache-dir`` (both repeatable) into
    existing metrics-database paths, erroring on a missing file so a
    typo reads as a typo and not as an empty trace set."""
    import pathlib

    from repro.metrics import metrics_path

    paths = list(args.metrics or [])
    paths.extend(
        str(metrics_path(directory)) for directory in args.cache_dir or []
    )
    if not paths:
        raise SystemExit(
            "repro trace: pass --metrics PATH and/or --cache-dir DIR"
            " (repeatable; spans from every database are merged)"
        )
    for path in paths:
        if not pathlib.Path(path).is_file():
            raise SystemExit(
                f"repro trace: no metrics database at {path!r}"
            )
    return paths


def _cmd_trace(args) -> int:
    from repro.trace import report as trace_report

    spans = trace_report.load_spans(_trace_db_paths(args))
    if args.json:
        print(trace_report.export_text(spans))
        return 0
    if args.trace_command == "show":
        print(
            trace_report.render_show(
                spans, trace_id=args.trace_id, limit=args.limit
            )
        )
        return 0
    if args.trace_command == "top":
        print(trace_report.render_top(spans))
        return 0
    if args.trace_command == "slow":
        print(
            trace_report.render_slow(
                spans, limit=args.limit, layer=args.layer
            )
        )
        return 0
    raise SystemExit(f"repro trace: unknown action {args.trace_command!r}")


def _cmd_cluster_prune(args) -> int:
    """``repro cluster stats --prune-older-than DAYS``: offline
    retention pruning of persisted metrics databases."""
    import pathlib
    import time

    from repro.metrics import MetricsDB, metrics_path

    if args.prune_older_than <= 0:
        raise SystemExit(
            "repro cluster stats: --prune-older-than must be a positive"
            " number of days"
        )
    paths = list(args.metrics or [])
    paths.extend(
        str(metrics_path(directory)) for directory in args.cache_dir or []
    )
    if not paths:
        raise SystemExit(
            "repro cluster stats: --prune-older-than needs --metrics PATH"
            " and/or --cache-dir DIR (repeatable) naming the shard"
            " databases to prune"
        )
    cutoff = time.time() - args.prune_older_than * 86400.0
    for path in paths:
        if not pathlib.Path(path).is_file():
            raise SystemExit(
                f"repro cluster stats: no metrics database at {path!r}"
            )
        with MetricsDB(path) as db:
            victims = db.prune_older_than(cutoff, dry_run=args.dry_run)
        total = sum(victims.values())
        detail = " ".join(
            f"{table}={victims[table]}" for table in sorted(victims)
        )
        if args.dry_run:
            print(
                f"dry run on {path}: {total} row(s) older than"
                f" {args.prune_older_than:g} day(s) would go ({detail})"
            )
        else:
            print(
                f"pruned {path}: {total} row(s) older than"
                f" {args.prune_older_than:g} day(s) deleted ({detail})"
            )
    return 0


def _cmd_cluster(args) -> int:
    import json as json_mod

    if args.cluster_command == "stats":
        if args.prune_older_than is not None:
            return _cmd_cluster_prune(args)
        client = _cluster_client_from(args)
        try:
            document = client.stats()
        finally:
            client.close()
        if args.json:
            print(json_mod.dumps(document, indent=2, sort_keys=True))
            return 0
        for address in document["nodes"]:
            shard = document["shards"][address]
            if "error" in shard:
                print(f"{address}: unreachable ({shard['error']})")
                continue
            service = shard.get("service") or {}
            print(
                f"{address}: requests={service.get('requests', 0)}"
                f" batches={service.get('batches', 0)}"
                f" coalesced={service.get('coalesced', 0)}"
                f" cells={service.get('cells', 0)}"
                f" errors={service.get('errors', 0)}"
            )
            latency = (shard.get("metrics") or {}).get("latency") or {}
            for op in sorted(latency):
                digest = latency[op]
                print(
                    f"  {op}: n={digest['count']}"
                    f" p50={digest['p50_ms']}ms p90={digest['p90_ms']}ms"
                    f" p99={digest['p99_ms']}ms max={digest['max_ms']}ms"
                )
        totals = document["cluster"]["service"]
        print(
            "cluster: "
            + " ".join(f"{name}={totals[name]}" for name in sorted(totals))
        )
        return 0
    if args.cluster_command == "top":
        import pathlib

        from repro.metrics import MetricsDB, metrics_path, percentile

        path = args.metrics
        if path is None and args.cache_dir is not None:
            path = str(metrics_path(args.cache_dir))
        if path is None:
            raise SystemExit(
                "repro cluster top: pass --metrics PATH or --cache-dir DIR"
            )
        if not pathlib.Path(path).is_file():
            raise SystemExit(
                f"repro cluster top: no metrics database at {path!r}"
            )
        with MetricsDB(path) as db:
            totals = db.counter_totals()
            print(f"metrics: {path}")
            if totals:
                width = max(len(name) for name in totals)
                for name in sorted(totals):
                    print(f"  {name:<{width}}  {totals[name]}")
            else:
                print("  (no counters recorded)")
            for op in db.latency_ops():
                histogram = db.histogram(op)
                count = sum(histogram.values())
                print(
                    f"  latency[{op}]: n={count}"
                    f" p50={percentile(histogram, 50):.3g}ms"
                    f" p90={percentile(histogram, 90):.3g}ms"
                    f" p99={percentile(histogram, 99):.3g}ms"
                )
        return 0
    raise SystemExit(
        f"repro cluster: unknown action {args.cluster_command!r}"
    )


def _cmd_chaos(args) -> int:
    import pathlib

    from repro.faults.chaos import ChaosError, run_chaos

    if args.size < 1:
        raise SystemExit("repro chaos: --size must be >= 1")
    if args.jobs < 2:
        raise SystemExit(
            "repro chaos: --jobs must be >= 2 (the worker-kill shard"
            " needs a real pool)"
        )
    try:
        report = run_chaos(
            size=args.size,
            seed=args.seed,
            jobs=args.jobs,
            budgets=tuple(args.budgets),
            machine_names=tuple(args.machines),
            down_ttl=args.down_ttl,
            verify=not args.no_verify,
            artifacts_dir=args.artifacts_dir,
            skip_restart=args.no_restart,
            log=lambda message: print(f"repro chaos: {message}"),
        )
    except ChaosError as error:
        raise SystemExit(f"repro chaos: {error}")
    print(report.render())
    if args.json_out:
        path = pathlib.Path(args.json_out)
        path.write_text(report.to_json_text() + "\n")
        print(f"report written to {path}")
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="register-constrained software pipelining"
        " (Llosa/Valero/Ayguade, MICRO 1996)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_parser = sub.add_parser(
        "compile", help="schedule a loop under a register budget"
    )
    _add_loop_arguments(compile_parser)
    compile_parser.add_argument("--name", default="loop")
    compile_parser.add_argument(
        "--registers", type=int, default=32, metavar="N"
    )
    compile_parser.add_argument(
        "--method", choices=tuple(strategy_names()), default="combined",
        help="register-pressure strategy (default combined)",
    )
    compile_parser.add_argument(
        "--scheduler", choices=tuple(scheduler_names()), default="hrms"
    )
    compile_parser.add_argument(
        "--policy", choices=("lt", "lt_traf"), default="lt_traf",
        help="spill selection heuristic",
    )
    compile_parser.add_argument(
        "--stage-pass", action="store_true",
        help="run the stage-scheduling post-pass on the result",
    )
    compile_parser.add_argument(
        "--json", action="store_true",
        help="also print the CompilationResult as JSON",
    )
    compile_parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persistent schedule cache directory (shared across runs;"
        " default: $REPRO_CACHE_DIR if set)",
    )
    compile_parser.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="size cap for --cache-dir eviction (default 512 MiB)",
    )
    compile_parser.add_argument(
        "--connect", metavar="ADDR", default=None,
        help="send the request to a running 'repro serve' daemon"
        " (http://host:port or a unix-socket path) instead of"
        " compiling in-process",
    )
    compile_parser.add_argument(
        "--show", nargs="*", choices=_SHOW_CHOICES, metavar="SECTION",
        help=f"artifacts to print: {', '.join(_SHOW_CHOICES)}",
    )
    compile_parser.add_argument(
        "--verify", action="store_true",
        help="re-derive every scheduling invariant with the independent"
        " repro.verify oracle (with --connect: recompile locally and"
        " cross-check the daemon's answer)",
    )
    compile_parser.set_defaults(func=_cmd_compile)

    mii_parser = sub.add_parser("mii", help="print the loop's MII bounds")
    _add_loop_arguments(mii_parser)
    mii_parser.add_argument("--name", default="loop")
    mii_parser.set_defaults(func=_cmd_mii)

    suite_parser = sub.add_parser(
        "suite", help="summarize the evaluation suite"
    )
    suite_parser.add_argument("--size", type=int, default=24)
    suite_parser.add_argument("--registers", type=int, default=32)
    suite_parser.add_argument("--machine", default="P2L4")
    suite_parser.add_argument(
        "--scheduler", choices=tuple(scheduler_names()), default="hrms"
    )
    suite_parser.set_defaults(func=_cmd_suite)

    sweep_parser = sub.add_parser(
        "sweep",
        help="regenerate evaluation artifacts via the experiment engine",
    )
    sweep_parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes (1 = serial; results identical either way)",
    )
    sweep_parser.add_argument(
        "--json-out", metavar="PATH",
        help="write machine-readable results (schema repro.sweep/1)",
    )
    sweep_parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persistent schedule cache shared by all workers and"
        " across runs (a repeat sweep into the same directory is"
        " served from disk; default: $REPRO_CACHE_DIR if set)",
    )
    sweep_parser.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="size cap for --cache-dir eviction (default 512 MiB)",
    )
    sweep_parser.add_argument(
        "--artifacts", nargs="+", metavar="NAME",
        choices=("table1", "fig4", "fig7", "fig8", "fig9"),
        default=["table1", "fig8"],
        help="artifacts to regenerate (default: table1 fig8)",
    )
    sweep_parser.add_argument(
        "--machines", nargs="+", metavar="SPEC",
        default=["P1L4", "P2L4", "P2L6"],
        help=f"machine filter: {' '.join(machine_names())}"
        " or generic:UNITS:LATENCY",
    )
    sweep_parser.add_argument(
        "--scheduler", default="hrms", metavar="NAME[,NAME...]",
        help="modulo scheduler(s) every cell runs on — a comma-separated"
        f" list of {', '.join(scheduler_names())} runs the whole grid"
        " once per scheduler into one combined artifact (default hrms)",
    )
    sweep_parser.add_argument(
        "--suite-filter", metavar="CATEGORY[,CATEGORY...]", default=None,
        help="restrict the suite to the named workload categories"
        " (e.g. high_pressure,nonconvergent)",
    )
    sweep_parser.add_argument(
        "--budgets", nargs="+", type=int, default=[64, 32], metavar="N",
        help="register budgets to sweep (default: 64 32)",
    )
    sweep_parser.add_argument(
        "--suite", choices=("club", "random"), default="club",
        help="loop population: the calibrated perfect-club-like suite or"
        " the parameterized random generator",
    )
    sweep_parser.add_argument(
        "--size", type=int, default=None, metavar="N",
        help="suite size (default: REPRO_SUITE_SIZE or 160)",
    )
    sweep_parser.add_argument("--seed", type=int, default=1996)
    sweep_parser.add_argument(
        "--ops", type=int, default=12,
        help="random suite: statement-op budget per loop",
    )
    sweep_parser.add_argument(
        "--recurrence-density", type=float, default=0.15,
        help="random suite: probability a statement closes a recurrence",
    )
    sweep_parser.add_argument(
        "--load-mix", type=float, default=0.55,
        help="random suite: probability an expression leaf is a load",
    )
    sweep_parser.add_argument(
        "--store-mix", type=float, default=0.3,
        help="random suite: probability a statement stores to memory",
    )
    sweep_parser.add_argument(
        "--connect", metavar="ADDR[,ADDR...]", default=None,
        help="route every cell through running 'repro serve' daemons"
        " (tcp://host:port, host:port, http://..., or socket paths;"
        " several addresses shard by consistent hashing) instead of"
        " evaluating in-process",
    )
    sweep_parser.add_argument(
        "--token", default=None,
        help="shared authentication token for --connect daemons"
        " (default: $REPRO_TOKEN)",
    )
    sweep_parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record an end-to-end trace of the run (client, service,"
        " worker and per-phase spans) into this repro.metrics/2"
        " database — sweep output bytes are unchanged; inspect with"
        " 'repro trace show|top|slow --metrics PATH'",
    )
    sweep_parser.add_argument(
        "--verify", action="store_true",
        help="run the independent repro.verify oracle on every schedule"
        " the sweep produces (output bytes unchanged; an invalid"
        " schedule aborts the run)",
    )
    sweep_parser.set_defaults(func=_cmd_sweep)

    fuzz_parser = sub.add_parser(
        "fuzz",
        help="differential-fuzz random loops through every scheduler x"
        " strategy, oracle-checking each result",
    )
    fuzz_parser.add_argument(
        "--iterations", "-n", type=int, default=100, metavar="N",
        help="random loops to generate (each compiles through every"
        " scheduler x strategy; default 100)",
    )
    fuzz_parser.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed; iteration i draws from derive_seed(seed, i)"
        " so any failure replays in isolation (default 0)",
    )
    fuzz_parser.add_argument(
        "--machines", nargs="+", metavar="SPEC",
        default=["P2L4", "P1L4"],
        help=f"machines cycled across iterations: {' '.join(machine_names())}"
        " or generic:UNITS:LATENCY (default: P2L4 P1L4)",
    )
    fuzz_parser.add_argument(
        "--schedulers", nargs="+", metavar="NAME",
        choices=tuple(scheduler_names()), default=list(scheduler_names()),
        help="schedulers to cross (default: all)",
    )
    fuzz_parser.add_argument(
        "--strategies", nargs="+", metavar="NAME",
        choices=tuple(strategy_names()), default=list(strategy_names()),
        help="register strategies to cross (default: all)",
    )
    fuzz_parser.add_argument(
        "--registers", nargs="+", type=int, default=[16, 32], metavar="N",
        help="register budgets cycled across iterations (default: 16 32)",
    )
    fuzz_parser.add_argument(
        "--ops", type=int, default=12,
        help="statement-op budget per random loop",
    )
    fuzz_parser.add_argument(
        "--recurrence-density", type=float, default=0.15,
        help="probability a statement closes a recurrence",
    )
    fuzz_parser.add_argument(
        "--load-mix", type=float, default=0.55,
        help="probability an expression leaf is a load",
    )
    fuzz_parser.add_argument(
        "--store-mix", type=float, default=0.3,
        help="probability a statement stores to memory",
    )
    fuzz_parser.add_argument(
        "--corpus", metavar="DIR", default=None,
        help="write each shrunk failure as a replayable reproducer"
        " document into this directory",
    )
    fuzz_parser.add_argument(
        "--no-shrink", action="store_true",
        help="keep failing loops at full size (faster triage loop)",
    )
    fuzz_parser.add_argument(
        "--replay", metavar="PATH", default=None,
        help="re-run one reproducer document from a --corpus directory"
        " instead of fuzzing",
    )
    fuzz_parser.add_argument(
        "--self-check", action="store_true",
        help="dry-run the shrinker on an injected failure and assert it"
        " minimizes to <= 8 operations (the CI gate)",
    )
    fuzz_parser.add_argument(
        "--json-out", metavar="PATH",
        help="write the campaign report (schema repro.fuzz/1)",
    )
    fuzz_parser.set_defaults(func=_cmd_fuzz)

    robust_parser = sub.add_parser(
        "robust",
        help="perturbation-robustness statistics for one loop (seeded"
        " latency/unit/distance jitter, every run oracle-checked)",
    )
    _add_loop_arguments(robust_parser)
    robust_parser.add_argument("--name", default="loop")
    robust_parser.add_argument(
        "--scheduler", choices=tuple(scheduler_names()), default="hrms"
    )
    robust_parser.add_argument(
        "--method", choices=tuple(strategy_names()), default="combined",
        help="register-pressure strategy (default combined)",
    )
    robust_parser.add_argument("--registers", type=int, default=32)
    robust_parser.add_argument(
        "--runs", type=int, default=20, metavar="N",
        help="perturbed compilations to measure (default 20)",
    )
    robust_parser.add_argument(
        "--seed", type=int, default=0,
        help="harness seed; run i jitters with derive_seed(seed, i)",
    )
    robust_parser.add_argument(
        "--jitter-latency", type=int, default=1, metavar="CYCLES",
        help="max absolute latency jitter per opcode (default 1)",
    )
    robust_parser.add_argument(
        "--jitter-units", type=int, default=1, metavar="COUNT",
        help="max absolute unit-count jitter per FU class (default 1)",
    )
    robust_parser.add_argument(
        "--jitter-distance", type=int, default=0, metavar="ITERS",
        help="max absolute jitter of loop-carried dependence distances"
        " (default 0 = distances untouched)",
    )
    robust_parser.add_argument(
        "--jitter-rate", type=float, default=0.5, metavar="P",
        help="per-item probability a latency/count/edge is jittered"
        " (default 0.5)",
    )
    robust_parser.add_argument(
        "--json-out", metavar="PATH",
        help="write the robustness report (schema repro.robust/1)",
    )
    robust_parser.set_defaults(func=_cmd_robust)

    cache_parser = sub.add_parser(
        "cache",
        help="inspect or clear a persistent schedule-cache directory",
    )
    cache_sub = cache_parser.add_subparsers(
        dest="cache_command", required=True
    )
    for action, description in (
        ("stats", "entry counts and bytes per namespace"),
        ("clear", "delete every entry (the directory is kept)"),
        ("prune", "evict oldest entries down to the size cap"),
    ):
        action_parser = cache_sub.add_parser(action, help=description)
        action_parser.add_argument(
            "--cache-dir", metavar="DIR", default=None,
            help="store directory (default: $REPRO_CACHE_DIR)",
        )
        if action == "prune":
            action_parser.add_argument(
                "--max-bytes", type=int, default=None, metavar="N",
                help="evict down to this cap instead of the store's"
                " default (512 MiB)",
            )
            action_parser.add_argument(
                "--dry-run", action="store_true",
                help="report what eviction would delete without"
                " deleting anything",
            )
        action_parser.set_defaults(func=_cmd_cache)

    serve_parser = sub.add_parser(
        "serve",
        help="run the long-lived compilation daemon (warm pool + shared"
        " store across clients)",
    )
    serve_parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker-pool width per batch (1 = compile in the daemon"
        " process; default 1)",
    )
    serve_parser.add_argument(
        "--http", type=int, default=None, metavar="PORT",
        help="serve HTTP on 127.0.0.1:PORT (0 picks a free port;"
        " endpoints: POST /compile, POST /compile_many, GET /healthz,"
        " GET /stats, POST /shutdown)",
    )
    serve_parser.add_argument(
        "--socket", metavar="PATH", default=None,
        help="serve the line-delimited JSON protocol on a unix socket",
    )
    serve_parser.add_argument(
        "--tcp", metavar="[HOST:]PORT", default=None,
        help="serve the line protocol on a TCP socket (the cluster"
        " transport; 0 picks a free port; combine with --token)",
    )
    serve_parser.add_argument(
        "--stdio", action="store_true",
        help="serve the line protocol on stdin/stdout (the default when"
        " no other transport is given)",
    )
    serve_parser.add_argument(
        "--token", default=None,
        help="shared authentication token: socket/TCP/HTTP requests"
        " without it are rejected (default: $REPRO_TOKEN; stdio and"
        " GET /healthz stay open)",
    )
    serve_parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persistent schedule cache the daemon owns for its whole"
        " lifetime (default: $REPRO_CACHE_DIR if set)",
    )
    serve_parser.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="size cap for --cache-dir eviction (default 512 MiB)",
    )
    serve_parser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="SQLite metrics database (latency histograms + counter"
        " time series; default: metrics.sqlite inside --cache-dir,"
        " in-memory only without one)",
    )
    serve_parser.add_argument(
        "--trace", action="store_true",
        help="record spans for every request this daemon handles (not"
        " just propagated ones) into the metrics database; response"
        " bytes are unchanged",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    trace_parser = sub.add_parser(
        "trace",
        help="inspect persisted request traces (span trees, phase"
        " breakdown, slowest spans) from repro.metrics/2 databases",
    )
    trace_sub = trace_parser.add_subparsers(
        dest="trace_command", required=True
    )
    for action, description in (
        ("show", "render the newest traces (or one trace) as span trees"),
        ("top", "aggregate per-phase profile across every trace"),
        ("slow", "the slowest spans, optionally of one layer"),
    ):
        action_parser = trace_sub.add_parser(action, help=description)
        action_parser.add_argument(
            "--metrics", metavar="PATH", action="append", default=None,
            help="metrics database to read (repeatable; spans merge"
            " across databases by trace_id)",
        )
        action_parser.add_argument(
            "--cache-dir", metavar="DIR", action="append", default=None,
            help="shard cache directory holding metrics.sqlite"
            " (repeatable)",
        )
        action_parser.add_argument(
            "--json", action="store_true",
            help="print the full repro.trace/1 export instead of text",
        )
        if action == "show":
            action_parser.add_argument(
                "trace_id", nargs="?", default=None,
                help="show only this trace (unambiguous id prefix ok)",
            )
        if action in ("show", "slow"):
            action_parser.add_argument(
                "--limit", type=int, default=10, metavar="N",
                help="how many traces/spans to show (default 10)",
            )
        if action == "slow":
            action_parser.add_argument(
                "--layer", default=None,
                choices=("client", "server", "service", "worker", "phase"),
                help="restrict to one span layer",
            )
        action_parser.set_defaults(func=_cmd_trace)

    cluster_parser = sub.add_parser(
        "cluster",
        help="inspect a sharded daemon cluster (per-shard + aggregated"
        " stats, persisted metrics)",
    )
    cluster_sub = cluster_parser.add_subparsers(
        dest="cluster_command", required=True
    )
    stats_parser = cluster_sub.add_parser(
        "stats", help="per-shard /stats plus a cluster-wide aggregate"
    )
    stats_parser.add_argument(
        "--connect", metavar="ADDR[,ADDR...]", default=None,
        help="shard daemon addresses (consistent-hash ring order"
        " does not matter)",
    )
    stats_parser.add_argument(
        "--token", default=None,
        help="shared authentication token (default: $REPRO_TOKEN)",
    )
    stats_parser.add_argument(
        "--json", action="store_true",
        help="print the raw aggregated document as JSON",
    )
    stats_parser.add_argument(
        "--prune-older-than", type=float, default=None, metavar="DAYS",
        help="instead of querying the cluster: delete metrics/trace"
        " rows older than DAYS days from the named databases"
        " (offline retention pruning; combine with --dry-run)",
    )
    stats_parser.add_argument(
        "--dry-run", action="store_true",
        help="with --prune-older-than: report what would be deleted"
        " without touching the databases",
    )
    stats_parser.add_argument(
        "--metrics", metavar="PATH", action="append", default=None,
        help="metrics database for --prune-older-than (repeatable)",
    )
    stats_parser.add_argument(
        "--cache-dir", metavar="DIR", action="append", default=None,
        help="shard cache directory holding metrics.sqlite for"
        " --prune-older-than (repeatable)",
    )
    stats_parser.set_defaults(func=_cmd_cluster)
    top_parser = cluster_sub.add_parser(
        "top", help="read one shard's persisted metrics database"
    )
    top_parser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="metrics database file (what 'repro serve --metrics'"
        " wrote)",
    )
    top_parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="shard cache directory holding metrics.sqlite",
    )
    top_parser.set_defaults(func=_cmd_cluster)

    chaos_parser = sub.add_parser(
        "chaos",
        help="run the seeded fault schedule against a live local"
        " cluster and assert sweep byte-identity (see REPRO_FAULTS in"
        " docs/TESTING.md)",
    )
    chaos_parser.add_argument(
        "--size", type=int, default=6, metavar="N",
        help="suite size for the chaos sweep (default 6)",
    )
    chaos_parser.add_argument(
        "--seed", type=int, default=None,
        help="suite + fault-plan seed (default: the suite default)",
    )
    chaos_parser.add_argument(
        "--jobs", "-j", type=int, default=2, metavar="N",
        help="pool width of the worker-kill shard (default 2)",
    )
    chaos_parser.add_argument(
        "--budgets", type=int, nargs="+", default=[32], metavar="R",
        help="register budgets for the sweep (default: 32)",
    )
    chaos_parser.add_argument(
        "--machines", nargs="+", default=["P2L4"], metavar="NAME",
        choices=machine_names(),
        help="machine configurations for the sweep (default: P2L4)",
    )
    chaos_parser.add_argument(
        "--down-ttl", type=float, default=2.0, metavar="SECONDS",
        help="cluster down-set TTL: how long a dead shard is skipped"
        " before re-probing (default 2.0)",
    )
    chaos_parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the independent schedule oracle on every cell",
    )
    chaos_parser.add_argument(
        "--no-restart", action="store_true",
        help="skip the shard-rebirth phase (no recovery assertion)",
    )
    chaos_parser.add_argument(
        "--artifacts-dir", metavar="DIR", default=None,
        help="write per-phase sweep JSON here for external cmp"
        " (default: a temporary directory)",
    )
    chaos_parser.add_argument(
        "--json-out", metavar="PATH", default=None,
        help="write the machine-readable chaos report here",
    )
    chaos_parser.set_defaults(func=_cmd_chaos)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
