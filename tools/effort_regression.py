"""Effort-counter regression gate.

Compiles a pinned suite with every cache bypassed and compares the
deterministic work counters (`attempts`, `placements`, `relaxations`,
`mrt_probes`, `lifetime_visits`, `alloc_probes` — plus `mii`/`ii` as
sanity anchors) against the checked-in expectations in
``benchmarks/expected_effort.json``.

The counters are pure counts of algorithmic work — no wall clock — so
any drift is a real behaviour or performance change: an intended one is
recorded by re-running with ``--update`` and committing the diff, an
unintended one fails CI.

Usage::

    PYTHONPATH=src python tools/effort_regression.py            # verify
    PYTHONPATH=src python tools/effort_regression.py --update   # re-pin
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

EXPECTATIONS = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks" / "expected_effort.json"
)

#: The pinned grid: every (loop, scheduler, strategy) cell below is
#: compiled cold.  Small enough to run in seconds, wide enough to cover
#: all three schedulers and both spill-shaped strategies.
SUITE_SIZE = 10
SUITE_SEED = 424242
MACHINE = "P2L4"
CELLS = (
    ("hrms", "spill", 32),
    ("hrms", "increase", 32),
    ("ims", "spill", 32),
    ("swing", "none", None),
)


def measured() -> dict:
    from repro.api import compile_loop
    from repro.sched import cache as sched_cache
    from repro.workloads import random_suite

    rows: dict[str, dict] = {}
    suite = random_suite(size=SUITE_SIZE, seed=SUITE_SEED)
    for workload in suite:
        for scheduler, strategy, registers in CELLS:
            with sched_cache.disabled():
                result = compile_loop(
                    workload.source,
                    machine=MACHINE,
                    scheduler=scheduler,
                    strategy=strategy,
                    registers=registers,
                    name=workload.name,
                )
            rows[f"{workload.name}/{scheduler}/{strategy}"] = {
                "mii": result.mii,
                "ii": result.ii,
                "attempts": result.attempts,
                "placements": result.placements,
                "relaxations": result.relaxations,
                "mrt_probes": result.mrt_probes,
                "lifetime_visits": result.lifetime_visits,
                "alloc_probes": result.alloc_probes,
            }
    return {
        "suite": {"kind": "random", "size": SUITE_SIZE, "seed": SUITE_SEED},
        "machine": MACHINE,
        "cells": rows,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the expectations file with the measured counters",
    )
    args = parser.parse_args(argv)

    current = measured()
    if args.update:
        EXPECTATIONS.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n"
        )
        print(f"pinned {len(current['cells'])} cells to {EXPECTATIONS}")
        return 0

    if not EXPECTATIONS.exists():
        print(f"missing {EXPECTATIONS}; run with --update first")
        return 1
    expected = json.loads(EXPECTATIONS.read_text())
    if current == expected:
        print(
            f"effort counters stable: {len(current['cells'])} cells match"
            f" {EXPECTATIONS.name}"
        )
        return 0

    drifted = []
    for key in sorted(set(expected.get("cells", {})) | set(current["cells"])):
        want = expected.get("cells", {}).get(key)
        got = current["cells"].get(key)
        if want != got:
            drifted.append(f"  {key}:\n    expected {want}\n    measured {got}")
    header = [
        f"effort counters drifted from {EXPECTATIONS.name}"
        f" ({len(drifted)} of {len(current['cells'])} cells):"
    ]
    if expected.get("suite") != current["suite"] or (
        expected.get("machine") != current["machine"]
    ):
        header.append(
            f"  (pin mismatch: expected {expected.get('suite')}"
            f"/{expected.get('machine')}, measured {current['suite']}"
            f"/{current['machine']})"
        )
    print("\n".join(header + drifted))
    print("intended change?  re-pin with: python tools/effort_regression.py"
          " --update")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
